// Package temporal implements the temporal-graph substrate of the paper
// (Definition 2): a temporal graph is a sequence of snapshots
// G_1 .. G_T over a fixed node set, where consecutive snapshots differ by
// edge insertions and deletions.
//
// Snapshots are stored as the initial edge set plus one Delta per
// transition, which is both compact (real temporal graphs change little
// between instants) and exactly the form CrashSim-T's delta pruning
// consumes. A Cursor materializes snapshots in order by applying deltas
// to a mutable graph.
package temporal

import (
	"fmt"

	"crashsim/internal/graph"
)

// Delta is the edge difference between snapshot t and snapshot t+1.
type Delta struct {
	Add []graph.Edge
	Del []graph.Edge
}

// Size returns the number of changed edges |E(Δ)|.
func (d Delta) Size() int { return len(d.Add) + len(d.Del) }

// Graph is a temporal graph: the initial snapshot plus T-1 deltas.
type Graph struct {
	n        int
	directed bool
	initial  []graph.Edge
	deltas   []Delta // deltas[t] transforms snapshot t into snapshot t+1
}

// New builds a temporal graph from the first snapshot's edges and the
// per-transition deltas. It validates the whole history eagerly: every
// Add must insert a missing edge and every Del must remove a present one.
func New(n int, directed bool, initial []graph.Edge, deltas []Delta) (*Graph, error) {
	tg := &Graph{n: n, directed: directed, initial: initial, deltas: deltas}
	cur, err := tg.Cursor()
	if err != nil {
		return nil, err
	}
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return tg, nil
}

// NumNodes returns the node count (fixed across snapshots).
func (tg *Graph) NumNodes() int { return tg.n }

// Directed reports whether snapshots are directed graphs.
func (tg *Graph) Directed() bool { return tg.directed }

// NumSnapshots returns T, the number of time instants.
func (tg *Graph) NumSnapshots() int { return len(tg.deltas) + 1 }

// Delta returns the delta transforming snapshot t into t+1,
// for t in [0, T-1).
func (tg *Graph) Delta(t int) Delta { return tg.deltas[t] }

// Snapshot materializes snapshot t as an immutable CSR graph. For
// sequential access over many snapshots, use a Cursor instead: Snapshot
// replays deltas from the start and costs O(t·Δ + m).
//
// The returned graph's Version is the cursor's working-graph
// Generation after replaying t deltas, so it is deterministic for a
// given t, strictly increases across snapshots separated by non-empty
// deltas, and stays equal across empty deltas (where the edge sets —
// and therefore any cached query results — really are identical).
// Result caches key on this version to avoid serving scores from a
// superseded snapshot.
func (tg *Graph) Snapshot(t int) (*graph.Graph, error) {
	if t < 0 || t >= tg.NumSnapshots() {
		return nil, fmt.Errorf("temporal: snapshot %d out of range [0,%d)", t, tg.NumSnapshots())
	}
	cur, err := tg.Cursor()
	if err != nil {
		return nil, err
	}
	for cur.T() < t {
		if !cur.Next() {
			return nil, cur.Err()
		}
	}
	return cur.Freeze(), nil
}

// Cursor returns a cursor positioned at snapshot 0.
func (tg *Graph) Cursor() (*Cursor, error) {
	d := graph.NewDiGraph(tg.n, tg.directed)
	for _, e := range tg.initial {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			return nil, fmt.Errorf("temporal: initial snapshot: %w", err)
		}
	}
	return &Cursor{tg: tg, cur: d}, nil
}

// Cursor iterates snapshots in time order, maintaining a mutable working
// graph. After construction the cursor is at snapshot 0; Next advances to
// the following snapshot, returning false at the end of the history or on
// an inconsistent delta (check Err).
type Cursor struct {
	tg  *Graph
	t   int
	cur *graph.DiGraph
	err error
}

// T returns the current snapshot index.
func (c *Cursor) T() int { return c.t }

// Err returns the first delta-application error encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Working returns the cursor's mutable working graph for the current
// snapshot. Callers must not modify it; it is invalidated by Next.
func (c *Cursor) Working() *graph.DiGraph { return c.cur }

// Freeze returns an immutable CSR view of the current snapshot,
// stamped with the working graph's Generation as its Version (see
// Graph.Snapshot for the monotonicity guarantees caches rely on).
func (c *Cursor) Freeze() *graph.Graph { return c.cur.Freeze() }

// Delta returns the delta that Next will apply, or a zero Delta at the
// last snapshot.
func (c *Cursor) Delta() Delta {
	if c.t >= len(c.tg.deltas) {
		return Delta{}
	}
	return c.tg.deltas[c.t]
}

// Next advances to the next snapshot.
func (c *Cursor) Next() bool {
	if c.err != nil || c.t >= len(c.tg.deltas) {
		return false
	}
	d := c.tg.deltas[c.t]
	for _, e := range d.Del {
		if err := c.cur.RemoveEdge(e.X, e.Y); err != nil {
			c.err = fmt.Errorf("temporal: delta %d: %w", c.t, err)
			return false
		}
	}
	for _, e := range d.Add {
		if err := c.cur.AddEdge(e.X, e.Y); err != nil {
			c.err = fmt.Errorf("temporal: delta %d: %w", c.t, err)
			return false
		}
	}
	c.t++
	return true
}

// Slice returns a temporal graph restricted to snapshots [from, to)
// of tg. It is used to vary the query-interval length in Fig 7.
func (tg *Graph) Slice(from, to int) (*Graph, error) {
	if from < 0 || to > tg.NumSnapshots() || from >= to {
		return nil, fmt.Errorf("temporal: bad slice [%d,%d) of %d snapshots", from, to, tg.NumSnapshots())
	}
	first, err := tg.Snapshot(from)
	if err != nil {
		return nil, err
	}
	return New(tg.n, tg.directed, first.Edges(), tg.deltas[from:to-1])
}

// FromSnapshots builds a temporal graph from fully materialized snapshot
// edge sets, computing the deltas. This is how the generators and the
// temporal edge-list reader construct histories.
func FromSnapshots(n int, directed bool, snaps [][]graph.Edge) (*Graph, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("temporal: need at least one snapshot")
	}
	deltas := make([]Delta, 0, len(snaps)-1)
	for t := 0; t+1 < len(snaps); t++ {
		deltas = append(deltas, DiffEdges(directed, snaps[t], snaps[t+1]))
	}
	return New(n, directed, snaps[0], deltas)
}

// DiffEdges computes the delta turning edge set a into edge set b.
// For undirected graphs, edges are canonicalized with X <= Y first.
func DiffEdges(directed bool, a, b []graph.Edge) Delta {
	canon := func(e graph.Edge) graph.Edge {
		if !directed && e.X > e.Y {
			e.X, e.Y = e.Y, e.X
		}
		return e
	}
	inA := make(map[graph.Edge]struct{}, len(a))
	for _, e := range a {
		inA[canon(e)] = struct{}{}
	}
	var d Delta
	inB := make(map[graph.Edge]struct{}, len(b))
	for _, e := range b {
		ce := canon(e)
		inB[ce] = struct{}{}
		if _, ok := inA[ce]; !ok {
			d.Add = append(d.Add, ce)
		}
	}
	for _, e := range a {
		ce := canon(e)
		if _, ok := inB[ce]; !ok {
			d.Del = append(d.Del, ce)
		}
	}
	return d
}
