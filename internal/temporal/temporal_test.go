package temporal

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"crashsim/internal/graph"
)

func mustTemporal(t *testing.T, n int, directed bool, initial []graph.Edge, deltas []Delta) *Graph {
	t.Helper()
	tg, err := New(n, directed, initial, deltas)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tg
}

func TestCursorWalksHistory(t *testing.T) {
	tg := mustTemporal(t, 4, true,
		[]graph.Edge{{X: 0, Y: 1}, {X: 1, Y: 2}},
		[]Delta{
			{Add: []graph.Edge{{X: 2, Y: 3}}},
			{Del: []graph.Edge{{X: 0, Y: 1}}, Add: []graph.Edge{{X: 3, Y: 0}}},
		})
	if got := tg.NumSnapshots(); got != 3 {
		t.Fatalf("NumSnapshots = %d, want 3", got)
	}
	cur, err := tg.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := []int{2, 3, 3}
	for i := 0; ; i++ {
		if cur.T() != i {
			t.Fatalf("cursor at %d, want %d", cur.T(), i)
		}
		g := cur.Freeze()
		if g.NumEdges() != wantEdges[i] {
			t.Errorf("snapshot %d has %d edges, want %d", i, g.NumEdges(), wantEdges[i])
		}
		if !cur.Next() {
			break
		}
	}
	if cur.Err() != nil {
		t.Fatalf("cursor error: %v", cur.Err())
	}
	// Final snapshot content.
	g := cur.Freeze()
	if g.HasEdge(0, 1) || !g.HasEdge(3, 0) || !g.HasEdge(2, 3) {
		t.Error("final snapshot content wrong")
	}
}

func TestSnapshotMaterialization(t *testing.T) {
	tg := mustTemporal(t, 3, false,
		[]graph.Edge{{X: 0, Y: 1}},
		[]Delta{{Add: []graph.Edge{{X: 1, Y: 2}}}})
	g0, err := tg.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.NumEdges() != 1 {
		t.Errorf("snapshot 0 edges = %d, want 1", g0.NumEdges())
	}
	g1, err := tg.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != 2 || !g1.HasEdge(2, 1) {
		t.Error("snapshot 1 content wrong")
	}
	if _, err := tg.Snapshot(2); err == nil {
		t.Error("out-of-range snapshot accepted")
	}
	if _, err := tg.Snapshot(-1); err == nil {
		t.Error("negative snapshot accepted")
	}
}

func TestNewValidatesHistory(t *testing.T) {
	cases := []struct {
		name   string
		init   []graph.Edge
		deltas []Delta
		want   string
	}{
		{"dup initial", []graph.Edge{{X: 0, Y: 1}, {X: 0, Y: 1}}, nil, "already present"},
		{"add existing", []graph.Edge{{X: 0, Y: 1}}, []Delta{{Add: []graph.Edge{{X: 0, Y: 1}}}}, "already present"},
		{"del missing", nil, []Delta{{Del: []graph.Edge{{X: 0, Y: 1}}}}, "not present"},
		{"self loop", []graph.Edge{{X: 1, Y: 1}}, nil, "self-loop"},
		{"out of range", []graph.Edge{{X: 0, Y: 9}}, nil, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(3, true, tc.init, tc.deltas)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDiffEdges(t *testing.T) {
	a := []graph.Edge{{X: 0, Y: 1}, {X: 1, Y: 2}}
	b := []graph.Edge{{X: 1, Y: 2}, {X: 2, Y: 3}}
	d := DiffEdges(true, a, b)
	if len(d.Add) != 1 || d.Add[0] != (graph.Edge{X: 2, Y: 3}) {
		t.Errorf("Add = %v", d.Add)
	}
	if len(d.Del) != 1 || d.Del[0] != (graph.Edge{X: 0, Y: 1}) {
		t.Errorf("Del = %v", d.Del)
	}
	// Undirected canonicalization: {1,0} equals {0,1}.
	d = DiffEdges(false, []graph.Edge{{X: 1, Y: 0}}, []graph.Edge{{X: 0, Y: 1}})
	if d.Size() != 0 {
		t.Errorf("undirected diff should be empty, got %+v", d)
	}
}

func TestFromSnapshotsRoundTrip(t *testing.T) {
	snaps := [][]graph.Edge{
		{{X: 0, Y: 1}, {X: 1, Y: 2}},
		{{X: 1, Y: 2}, {X: 2, Y: 0}},
		{{X: 2, Y: 0}},
	}
	tg, err := FromSnapshots(3, true, snaps)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range snaps {
		g, err := tg.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != len(want) {
			t.Errorf("snapshot %d has %d edges, want %d", i, g.NumEdges(), len(want))
		}
		for _, e := range want {
			if !g.HasEdge(e.X, e.Y) {
				t.Errorf("snapshot %d missing edge %v", i, e)
			}
		}
	}
	if _, err := FromSnapshots(3, true, nil); err == nil {
		t.Error("empty snapshot list accepted")
	}
}

// TestFromSnapshotsQuick property-checks that rebuilding arbitrary
// random snapshot sequences through deltas reproduces each snapshot
// exactly.
func TestFromSnapshotsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		n := 3 + r.IntN(10)
		T := 2 + r.IntN(5)
		snaps := make([][]graph.Edge, T)
		for i := range snaps {
			seen := map[graph.Edge]struct{}{}
			for j := 0; j < r.IntN(2*n); j++ {
				x, y := graph.NodeID(r.IntN(n)), graph.NodeID(r.IntN(n))
				if x == y {
					continue
				}
				seen[graph.Edge{X: x, Y: y}] = struct{}{}
			}
			for e := range seen {
				snaps[i] = append(snaps[i], e)
			}
		}
		tg, err := FromSnapshots(n, true, snaps)
		if err != nil {
			return false
		}
		for i, want := range snaps {
			g, err := tg.Snapshot(i)
			if err != nil || g.NumEdges() != len(want) {
				return false
			}
			for _, e := range want {
				if !g.HasEdge(e.X, e.Y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	tg := mustTemporal(t, 3, true,
		[]graph.Edge{{X: 0, Y: 1}},
		[]Delta{
			{Add: []graph.Edge{{X: 1, Y: 2}}},
			{Add: []graph.Edge{{X: 2, Y: 0}}},
			{Del: []graph.Edge{{X: 0, Y: 1}}},
		})
	sl, err := tg.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sl.NumSnapshots() != 3 {
		t.Fatalf("slice has %d snapshots, want 3", sl.NumSnapshots())
	}
	g0, err := sl.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.NumEdges() != 2 || !g0.HasEdge(1, 2) {
		t.Error("slice snapshot 0 should equal original snapshot 1")
	}
	g2, err := sl.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.HasEdge(0, 1) || g2.NumEdges() != 2 {
		t.Error("slice snapshot 2 should equal original snapshot 3")
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 9}, {2, 2}, {3, 1}} {
		if _, err := tg.Slice(bad[0], bad[1]); err == nil {
			t.Errorf("Slice(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

// TestSliceBoundaries pins the interval-endpoint cases: the identity
// slice [0, T), single-snapshot slices at the first and last instants,
// and the exact edge sets each must carry.
func TestSliceBoundaries(t *testing.T) {
	tg := mustTemporal(t, 3, true,
		[]graph.Edge{{X: 0, Y: 1}},
		[]Delta{
			{Add: []graph.Edge{{X: 1, Y: 2}}},
			{Del: []graph.Edge{{X: 0, Y: 1}}},
		})
	T := tg.NumSnapshots()

	// Identity slice: same length, same snapshots at both ends.
	full, err := tg.Slice(0, T)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumSnapshots() != T {
		t.Fatalf("Slice(0,T) has %d snapshots, want %d", full.NumSnapshots(), T)
	}
	for _, i := range []int{0, T - 1} {
		want, err := tg.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := full.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumEdges() != want.NumEdges() {
			t.Errorf("identity slice snapshot %d: %d edges, want %d", i, got.NumEdges(), want.NumEdges())
		}
	}

	// Single-snapshot slices at every instant, including from=0 and
	// to=T: one snapshot, no deltas, matching edge counts.
	wantEdges := []int{1, 2, 1}
	for from := 0; from < T; from++ {
		single, err := tg.Slice(from, from+1)
		if err != nil {
			t.Fatalf("Slice(%d,%d): %v", from, from+1, err)
		}
		if single.NumSnapshots() != 1 {
			t.Fatalf("Slice(%d,%d) has %d snapshots, want 1", from, from+1, single.NumSnapshots())
		}
		g, err := single.Snapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != wantEdges[from] {
			t.Errorf("single slice at %d: %d edges, want %d", from, g.NumEdges(), wantEdges[from])
		}
		if _, err := single.Snapshot(1); err == nil {
			t.Errorf("single slice at %d: snapshot 1 accepted", from)
		}
	}

	// Slicing a slice stays consistent with slicing the original.
	tail, err := tg.Slice(1, T)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tail.Slice(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tg.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sub.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.NumEdges() || got.HasEdge(0, 1) != want.HasEdge(0, 1) {
		t.Error("slice-of-slice snapshot differs from direct slice")
	}
}
