package temporal

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"crashsim/internal/graph"
)

// The temporal edge-list format models timestamped interaction logs like
// AS-733: a header directive fixes the node count, direction and snapshot
// count, then each line is "t op x y" where op is '+' or '-' and t is the
// snapshot index the change takes effect at (t >= 1). Snapshot 0 edges
// are written with "0 + x y". Lines must be sorted by t.
//
//	# crashsim-temporal: nodes=N directed=BOOL snapshots=T
//	0 + 1 2
//	1 - 1 2
//	1 + 2 3

// maxSnapshots bounds the snapshot count a header may declare,
// guarding the delta-array allocation against malformed input.
const maxSnapshots = 1 << 24

// Read parses a temporal graph from r. It applies the same node-count
// guard as graph.ReadEdgeList; use ReadLimit to raise it.
func Read(r io.Reader) (*Graph, error) {
	return ReadLimit(r, graph.DefaultMaxNodes)
}

// ReadLimit is Read with an explicit node-count bound.
func ReadLimit(r io.Reader, maxNodes int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var (
		n, T       int
		directed   bool
		haveHeader bool
		initial    []graph.Edge
		deltas     []Delta
		prevT      = 0
		line       = 0
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# crashsim-temporal:"); ok {
				var err error
				n, directed, T, err = parseTemporalHeader(rest)
				if err != nil {
					return nil, fmt.Errorf("temporal: line %d: %w", line, err)
				}
				if n > maxNodes {
					return nil, fmt.Errorf("temporal: header names %d nodes, above the limit of %d", n, maxNodes)
				}
				if T > maxSnapshots {
					return nil, fmt.Errorf("temporal: header names %d snapshots, above the limit of %d", T, maxSnapshots)
				}
				haveHeader = true
				deltas = make([]Delta, T-1)
			}
			continue
		}
		if !haveHeader {
			return nil, fmt.Errorf("temporal: line %d: missing '# crashsim-temporal:' header", line)
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("temporal: line %d: want 4 fields, got %d", line, len(fields))
		}
		t, err := strconv.Atoi(fields[0])
		if err != nil || t < 0 || t >= T {
			return nil, fmt.Errorf("temporal: line %d: bad snapshot index %q", line, fields[0])
		}
		if t < prevT {
			return nil, fmt.Errorf("temporal: line %d: snapshot indices not sorted", line)
		}
		prevT = t
		x, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil || x < 0 {
			return nil, fmt.Errorf("temporal: line %d: bad node id %q", line, fields[2])
		}
		y, err := strconv.ParseInt(fields[3], 10, 32)
		if err != nil || y < 0 {
			return nil, fmt.Errorf("temporal: line %d: bad node id %q", line, fields[3])
		}
		e := graph.Edge{X: graph.NodeID(x), Y: graph.NodeID(y)}
		switch fields[1] {
		case "+":
			if t == 0 {
				initial = append(initial, e)
			} else {
				deltas[t-1].Add = append(deltas[t-1].Add, e)
			}
		case "-":
			if t == 0 {
				return nil, fmt.Errorf("temporal: line %d: deletion in initial snapshot", line)
			}
			deltas[t-1].Del = append(deltas[t-1].Del, e)
		default:
			return nil, fmt.Errorf("temporal: line %d: bad op %q", line, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("temporal: reading: %w", err)
	}
	if !haveHeader {
		return nil, fmt.Errorf("temporal: empty input (missing header)")
	}
	return New(n, directed, initial, deltas)
}

// Write emits tg in the temporal edge-list format.
func Write(w io.Writer, tg *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# crashsim-temporal: nodes=%d directed=%t snapshots=%d\n",
		tg.NumNodes(), tg.Directed(), tg.NumSnapshots())
	for _, e := range tg.initial {
		fmt.Fprintf(bw, "0 + %d %d\n", e.X, e.Y)
	}
	for t, d := range tg.deltas {
		for _, e := range d.Del {
			fmt.Fprintf(bw, "%d - %d %d\n", t+1, e.X, e.Y)
		}
		for _, e := range d.Add {
			fmt.Fprintf(bw, "%d + %d %d\n", t+1, e.X, e.Y)
		}
	}
	return bw.Flush()
}

func parseTemporalHeader(rest string) (n int, directed bool, T int, err error) {
	directed = true
	T = 1
	for _, f := range strings.Fields(rest) {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return 0, false, 0, fmt.Errorf("bad header field %q", f)
		}
		switch key {
		case "nodes":
			if n, err = strconv.Atoi(val); err != nil || n < 0 {
				return 0, false, 0, fmt.Errorf("bad node count %q", val)
			}
		case "directed":
			if directed, err = strconv.ParseBool(val); err != nil {
				return 0, false, 0, fmt.Errorf("bad directed flag %q", val)
			}
		case "snapshots":
			if T, err = strconv.Atoi(val); err != nil || T < 1 {
				return 0, false, 0, fmt.Errorf("bad snapshot count %q", val)
			}
		default:
			return 0, false, 0, fmt.Errorf("unknown header field %q", key)
		}
	}
	return n, directed, T, nil
}
