package temporal

import (
	"bytes"
	"strings"
	"testing"

	"crashsim/internal/graph"
)

func TestTemporalIORoundTrip(t *testing.T) {
	tg := mustTemporal(t, 4, true,
		[]graph.Edge{{X: 0, Y: 1}, {X: 2, Y: 3}},
		[]Delta{
			{Add: []graph.Edge{{X: 1, Y: 2}}},
			{Del: []graph.Edge{{X: 0, Y: 1}}},
		})
	var buf bytes.Buffer
	if err := Write(&buf, tg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumNodes() != 4 || got.NumSnapshots() != 3 || !got.Directed() {
		t.Fatalf("round trip header mismatch: n=%d T=%d", got.NumNodes(), got.NumSnapshots())
	}
	for i := 0; i < 3; i++ {
		a, err := tg.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumEdges() != b.NumEdges() {
			t.Errorf("snapshot %d edges %d vs %d", i, a.NumEdges(), b.NumEdges())
		}
		for _, e := range a.Edges() {
			if !b.HasEdge(e.X, e.Y) {
				t.Errorf("snapshot %d lost edge %v", i, e)
			}
		}
	}
}

func TestTemporalReadLimits(t *testing.T) {
	huge := "# crashsim-temporal: nodes=999999999 directed=true snapshots=2\n"
	if _, err := Read(strings.NewReader(huge)); err == nil {
		t.Error("absurd node count accepted by default limit")
	}
	manySnaps := "# crashsim-temporal: nodes=3 directed=true snapshots=999999999\n"
	if _, err := Read(strings.NewReader(manySnaps)); err == nil {
		t.Error("absurd snapshot count accepted")
	}
	if _, err := ReadLimit(strings.NewReader("# crashsim-temporal: nodes=100 snapshots=1\n"), 50); err == nil {
		t.Error("explicit limit not enforced")
	}
}

func TestTemporalReadErrors(t *testing.T) {
	header := "# crashsim-temporal: nodes=3 directed=true snapshots=2\n"
	cases := []struct {
		name, in, want string
	}{
		{"missing header", "0 + 0 1\n", "missing"},
		{"bad field count", header + "0 + 1\n", "want 4 fields"},
		{"bad snapshot", header + "9 + 0 1\n", "bad snapshot index"},
		{"unsorted", header + "1 + 0 1\n0 + 1 2\n", "not sorted"},
		{"bad op", header + "0 * 0 1\n", "bad op"},
		{"bad node", header + "0 + a 1\n", "bad node id"},
		{"del at zero", header + "0 - 0 1\n", "deletion in initial snapshot"},
		{"bad header nodes", "# crashsim-temporal: nodes=x\n", "bad node count"},
		{"bad header snapshots", "# crashsim-temporal: nodes=3 snapshots=0\n", "bad snapshot count"},
		{"unknown header", "# crashsim-temporal: color=red\n", "unknown header field"},
		{"empty", "", "missing header"},
		{"inconsistent delta", header + "1 - 0 1\n", "not present"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}
