package temporal

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the temporal parser never panics and that every
// successfully parsed history round-trips through the writer.
func FuzzRead(f *testing.F) {
	f.Add("# crashsim-temporal: nodes=3 directed=true snapshots=2\n0 + 0 1\n1 - 0 1\n")
	f.Add("# crashsim-temporal: nodes=2 directed=false snapshots=1\n0 + 0 1\n")
	f.Add("0 + 0 1\n")
	f.Add("# crashsim-temporal: nodes=x\n")
	f.Add("# crashsim-temporal: nodes=3 snapshots=2\n1 * 0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tg, err := ReadLimit(strings.NewReader(input), 1<<16)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tg); err != nil {
			t.Fatalf("writing parsed history: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\noutput: %q", err, buf.String())
		}
		if back.NumNodes() != tg.NumNodes() || back.NumSnapshots() != tg.NumSnapshots() {
			t.Fatal("round trip changed dimensions")
		}
	})
}
