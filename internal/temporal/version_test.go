package temporal

import (
	"testing"

	"crashsim/internal/graph"
)

// Snapshot versions are the cache-invalidation signal for temporal
// serving: advancing past a non-empty delta must change the version,
// an empty delta must not (the edge sets are identical), and
// materializing the same snapshot twice must report the same version.

func testHistory(t *testing.T) *Graph {
	t.Helper()
	tg, err := New(5, true,
		[]graph.Edge{{X: 0, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 3}},
		[]Delta{
			{Add: []graph.Edge{{X: 3, Y: 4}}}, // t0 -> t1
			{},                                // t1 -> t2 (no change)
			{Del: []graph.Edge{{X: 0, Y: 1}}, Add: []graph.Edge{{X: 0, Y: 4}}}, // t2 -> t3
		})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestSnapshotVersionMonotone(t *testing.T) {
	tg := testHistory(t)
	versions := make([]uint64, tg.NumSnapshots())
	for i := range versions {
		g, err := tg.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		versions[i] = g.Version()
	}
	if versions[1] <= versions[0] {
		t.Fatalf("non-empty delta did not advance version: %v", versions)
	}
	if versions[2] != versions[1] {
		t.Fatalf("empty delta changed version: %v", versions)
	}
	if versions[3] <= versions[2] {
		t.Fatalf("del+add delta did not advance version: %v", versions)
	}
}

func TestSnapshotVersionDeterministic(t *testing.T) {
	tg := testHistory(t)
	for i := 0; i < tg.NumSnapshots(); i++ {
		a, err := tg.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tg.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if a.Version() != b.Version() {
			t.Fatalf("snapshot %d version not deterministic: %d vs %d", i, a.Version(), b.Version())
		}
	}
}

func TestCursorFreezeVersionMatchesSnapshot(t *testing.T) {
	tg := testHistory(t)
	cur, err := tg.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for {
		want, err := tg.Snapshot(cur.T())
		if err != nil {
			t.Fatal(err)
		}
		if got := cur.Freeze().Version(); got != want.Version() {
			t.Fatalf("snapshot %d: cursor version %d != Snapshot version %d", cur.T(), got, want.Version())
		}
		if !cur.Next() {
			break
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
}
