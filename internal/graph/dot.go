package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits g in Graphviz DOT format for visual inspection of
// small graphs (the running example, test fixtures, cluster output).
// Nodes may be given labels via the optional label function; nil uses
// the numeric id.
func WriteDOT(w io.Writer, g *Graph, label func(NodeID) string) error {
	bw := bufio.NewWriter(w)
	kind, arrow := "digraph", "->"
	if !g.Directed() {
		kind, arrow = "graph", "--"
	}
	fmt.Fprintf(bw, "%s crashsim {\n", kind)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		name := fmt.Sprintf("%d", v)
		if label != nil {
			name = label(v)
		}
		fmt.Fprintf(bw, "  n%d [label=%q];\n", v, name)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  n%d %s n%d;\n", e.X, arrow, e.Y)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
