package graph

import "testing"

// The serving layer's result cache keys on Graph.Version /
// DiGraph.Generation; these tests pin the contract: every edge
// mutation bumps the generation (insertions and removals alike),
// failed mutations do not, and Freeze stamps the generation onto the
// immutable snapshot.

func TestDiGraphGeneration(t *testing.T) {
	d := NewDiGraph(4, true)
	if d.Generation() != 0 {
		t.Fatalf("fresh generation = %d, want 0", d.Generation())
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 {
		t.Fatalf("after add: generation = %d, want 1", d.Generation())
	}
	// Failed mutations must not bump: the edge set did not change.
	if err := d.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate add succeeded")
	}
	if err := d.RemoveEdge(2, 3); err == nil {
		t.Fatal("absent remove succeeded")
	}
	if err := d.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop add succeeded")
	}
	if d.Generation() != 1 {
		t.Fatalf("after failed mutations: generation = %d, want 1", d.Generation())
	}
	// A removal changes the graph, so it must change the version too —
	// otherwise add+remove would round-trip back to a generation whose
	// cached results were computed on a different edge set.
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 2 {
		t.Fatalf("after remove: generation = %d, want 2", d.Generation())
	}
}

func TestDiGraphGenerationUndirected(t *testing.T) {
	d := NewDiGraph(3, false)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// One logical edge = one generation bump, even though two arcs are
	// stored internally.
	if d.Generation() != 1 {
		t.Fatalf("undirected add bumped generation to %d, want 1", d.Generation())
	}
}

func TestCloneCopiesGeneration(t *testing.T) {
	d := NewDiGraph(3, true)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	if c.Generation() != d.Generation() {
		t.Fatalf("clone generation = %d, want %d", c.Generation(), d.Generation())
	}
	// Diverging mutations diverge the generations independently.
	if err := c.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 || c.Generation() != 2 {
		t.Fatalf("generations after divergence: original=%d clone=%d, want 1 and 2",
			d.Generation(), c.Generation())
	}
}

func TestFreezeStampsVersion(t *testing.T) {
	d := NewDiGraph(4, true)
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}} {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	g1 := d.Freeze()
	if g1.Version() != 3 {
		t.Fatalf("frozen version = %d, want 3", g1.Version())
	}
	// Freezing again without mutations yields the same version: the
	// edge sets are identical, so cached results remain valid.
	if g2 := d.Freeze(); g2.Version() != g1.Version() {
		t.Fatalf("re-freeze changed version: %d vs %d", g2.Version(), g1.Version())
	}
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g3 := d.Freeze(); g3.Version() <= g1.Version() {
		t.Fatalf("version after mutation = %d, want > %d", g3.Version(), g1.Version())
	}
}

// Builder-frozen graphs used to report Version() == 0, which was only
// sound while a graph could never outlive its process: two different
// builder graphs sharing one result cache collided on version 0, and a
// persisted snapshot had no identity to verify against. The version is
// now content-derived.

func TestBuilderContentVersionDistinct(t *testing.T) {
	a := NewBuilder(3, true).AddEdge(0, 1).MustFreeze()
	b := NewBuilder(3, true).AddEdge(1, 2).MustFreeze()
	if a.Version() == 0 || b.Version() == 0 {
		t.Fatalf("builder-frozen versions must not be 0 (got %#x, %#x)", a.Version(), b.Version())
	}
	if a.Version() == b.Version() {
		t.Fatalf("distinct builder graphs share version %#x", a.Version())
	}
	// Same n, same direction, different edge direction only.
	c := NewBuilder(3, true).AddEdge(1, 0).MustFreeze()
	if c.Version() == a.Version() {
		t.Fatalf("reversed edge shares version %#x", a.Version())
	}
}

func TestBuilderContentVersionStable(t *testing.T) {
	build := func() *Graph {
		return NewBuilder(4, true).AddEdge(2, 3).AddEdge(0, 1).AddEdge(1, 2).MustFreeze()
	}
	a, b := build(), build()
	if a.Version() != b.Version() {
		t.Fatalf("same edge list froze to different versions: %#x vs %#x", a.Version(), b.Version())
	}
	// Insertion order must not matter: the CSR form is canonical.
	c := NewBuilder(4, true).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustFreeze()
	if c.Version() != a.Version() {
		t.Fatalf("edge insertion order changed version: %#x vs %#x", c.Version(), a.Version())
	}
}

func TestVersionFamiliesDisjoint(t *testing.T) {
	b := NewBuilder(3, true).AddEdge(0, 1).MustFreeze()
	if !VersionIsContentDerived(b.Version()) {
		t.Fatalf("builder version %#x not marked content-derived", b.Version())
	}
	d := NewDiGraph(3, true)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g := d.Freeze(); VersionIsContentDerived(g.Version()) {
		t.Fatalf("DiGraph-frozen version %#x claims to be content-derived", g.Version())
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	g := NewBuilder(4, true).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(0, 3).MustFreeze()
	inOff, inAdj := g.InCSR()
	outOff, outAdj := g.OutCSR()
	got, err := FromCSR(g.NumNodes(), g.Directed(), g.Version(), inOff, inAdj, outOff, outAdj)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != g.Version() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round-trip mismatch: version %#x vs %#x, edges %d vs %d",
			got.Version(), g.Version(), got.NumEdges(), g.NumEdges())
	}
	// A content-derived version that does not describe the arrays must be
	// rejected: that is the loader's graph-identity check.
	if _, err := FromCSR(g.NumNodes(), g.Directed(), g.Version()^1, inOff, inAdj, outOff, outAdj); err == nil {
		t.Fatal("FromCSR accepted a forged content version")
	}
	// A generation version (no marker bit) is adopted as-is.
	if got, err := FromCSR(g.NumNodes(), g.Directed(), 7, inOff, inAdj, outOff, outAdj); err != nil || got.Version() != 7 {
		t.Fatalf("FromCSR with generation version: got %v, %v", got, err)
	}
}
