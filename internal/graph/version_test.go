package graph

import "testing"

// The serving layer's result cache keys on Graph.Version /
// DiGraph.Generation; these tests pin the contract: every edge
// mutation bumps the generation (insertions and removals alike),
// failed mutations do not, and Freeze stamps the generation onto the
// immutable snapshot.

func TestDiGraphGeneration(t *testing.T) {
	d := NewDiGraph(4, true)
	if d.Generation() != 0 {
		t.Fatalf("fresh generation = %d, want 0", d.Generation())
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 {
		t.Fatalf("after add: generation = %d, want 1", d.Generation())
	}
	// Failed mutations must not bump: the edge set did not change.
	if err := d.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate add succeeded")
	}
	if err := d.RemoveEdge(2, 3); err == nil {
		t.Fatal("absent remove succeeded")
	}
	if err := d.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop add succeeded")
	}
	if d.Generation() != 1 {
		t.Fatalf("after failed mutations: generation = %d, want 1", d.Generation())
	}
	// A removal changes the graph, so it must change the version too —
	// otherwise add+remove would round-trip back to a generation whose
	// cached results were computed on a different edge set.
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 2 {
		t.Fatalf("after remove: generation = %d, want 2", d.Generation())
	}
}

func TestDiGraphGenerationUndirected(t *testing.T) {
	d := NewDiGraph(3, false)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// One logical edge = one generation bump, even though two arcs are
	// stored internally.
	if d.Generation() != 1 {
		t.Fatalf("undirected add bumped generation to %d, want 1", d.Generation())
	}
}

func TestCloneCopiesGeneration(t *testing.T) {
	d := NewDiGraph(3, true)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	if c.Generation() != d.Generation() {
		t.Fatalf("clone generation = %d, want %d", c.Generation(), d.Generation())
	}
	// Diverging mutations diverge the generations independently.
	if err := c.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 || c.Generation() != 2 {
		t.Fatalf("generations after divergence: original=%d clone=%d, want 1 and 2",
			d.Generation(), c.Generation())
	}
}

func TestFreezeStampsVersion(t *testing.T) {
	d := NewDiGraph(4, true)
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}} {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	g1 := d.Freeze()
	if g1.Version() != 3 {
		t.Fatalf("frozen version = %d, want 3", g1.Version())
	}
	// Freezing again without mutations yields the same version: the
	// edge sets are identical, so cached results remain valid.
	if g2 := d.Freeze(); g2.Version() != g1.Version() {
		t.Fatalf("re-freeze changed version: %d vs %d", g2.Version(), g1.Version())
	}
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g3 := d.Freeze(); g3.Version() <= g1.Version() {
		t.Fatalf("version after mutation = %d, want > %d", g3.Version(), g1.Version())
	}
}

func TestBuilderGraphVersionZero(t *testing.T) {
	g := NewBuilder(3, true).AddEdge(0, 1).MustFreeze()
	if g.Version() != 0 {
		t.Fatalf("builder-frozen version = %d, want 0", g.Version())
	}
}
