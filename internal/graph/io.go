package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The edge-list format mirrors the SNAP datasets the paper evaluates on:
// one whitespace-separated "x y" pair per line, '#' comments, blank lines
// ignored. An optional header directive
//
//	# crashsim: nodes=N directed=true|false
//
// fixes the node count and direction; without it, nodes is max id + 1 and
// the graph is assumed directed.

// DefaultMaxNodes bounds the node count ReadEdgeList accepts, guarding
// against malformed input that names an absurd node id and would make
// the loader allocate gigabytes of adjacency offsets. Use
// ReadEdgeListLimit to raise the bound for genuinely huge graphs.
const DefaultMaxNodes = 1 << 27

// ReadEdgeList parses an edge list from r and builds a Graph.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListLimit(r, DefaultMaxNodes)
}

// ReadEdgeListLimit is ReadEdgeList with an explicit node-count bound.
func ReadEdgeListLimit(r io.Reader, maxNodes int) (*Graph, error) {
	edges, n, directed, err := parseEdgeList(r)
	if err != nil {
		return nil, err
	}
	if n > maxNodes {
		return nil, fmt.Errorf("graph: input names %d nodes, above the limit of %d", n, maxNodes)
	}
	return NewBuilder(n, directed).AddEdges(edges).Freeze()
}

// WriteEdgeList writes g in the edge-list format with a header directive,
// so a round-trip through ReadEdgeList reconstructs the same graph.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# crashsim: nodes=%d directed=%t\n", g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.X, e.Y)
	}
	return bw.Flush()
}

func parseEdgeList(r io.Reader) (edges []Edge, n int, directed bool, err error) {
	directed = true
	haveHeader := false
	maxID := NodeID(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# crashsim:"); ok {
				n, directed, err = parseHeader(rest)
				if err != nil {
					return nil, 0, false, fmt.Errorf("graph: line %d: %w", line, err)
				}
				haveHeader = true
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, 0, false, fmt.Errorf("graph: line %d: want 2 fields, got %d", line, len(fields))
		}
		x, err := parseNode(fields[0])
		if err != nil {
			return nil, 0, false, fmt.Errorf("graph: line %d: %w", line, err)
		}
		y, err := parseNode(fields[1])
		if err != nil {
			return nil, 0, false, fmt.Errorf("graph: line %d: %w", line, err)
		}
		edges = append(edges, Edge{X: x, Y: y})
		if x > maxID {
			maxID = x
		}
		if y > maxID {
			maxID = y
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, false, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if !haveHeader {
		n = int(maxID) + 1
	}
	return edges, n, directed, nil
}

func parseHeader(rest string) (n int, directed bool, err error) {
	directed = true
	for _, f := range strings.Fields(rest) {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return 0, false, fmt.Errorf("bad header field %q", f)
		}
		switch key {
		case "nodes":
			n, err = strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, false, fmt.Errorf("bad node count %q", val)
			}
		case "directed":
			directed, err = strconv.ParseBool(val)
			if err != nil {
				return 0, false, fmt.Errorf("bad directed flag %q", val)
			}
		default:
			return 0, false, fmt.Errorf("unknown header field %q", key)
		}
	}
	return n, directed, nil
}

func parseNode(s string) (NodeID, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative node id %d", v)
	}
	return NodeID(v), nil
}
