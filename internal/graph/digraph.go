package graph

import "fmt"

// DiGraph is a mutable graph with O(deg) edge insertion and removal. It is
// the working representation for temporal snapshots: a cursor applies edge
// deltas to a DiGraph and freezes a CSR view when an algorithm needs one.
//
// The "Di" prefix refers to the internal arc storage: undirected graphs
// are supported and store both arcs per edge, mirroring Graph.
type DiGraph struct {
	directed bool
	in       [][]NodeID
	out      [][]NodeID
	arcs     int
	gen      uint64 // bumped once per successful edge mutation
}

// NewDiGraph returns an empty mutable graph with n nodes.
func NewDiGraph(n int, directed bool) *DiGraph {
	return &DiGraph{
		directed: directed,
		in:       make([][]NodeID, n),
		out:      make([][]NodeID, n),
	}
}

// NumNodes returns the number of nodes.
func (d *DiGraph) NumNodes() int { return len(d.in) }

// NumEdges returns the number of directed arcs (directed) or undirected
// edges (undirected).
func (d *DiGraph) NumEdges() int {
	if d.directed {
		return d.arcs
	}
	return d.arcs / 2
}

// Directed reports whether the graph is directed.
func (d *DiGraph) Directed() bool { return d.directed }

// Generation is a monotonically increasing edge-mutation counter: it
// bumps once per successful AddEdge or RemoveEdge. Freeze stamps it
// onto the immutable snapshot as Graph.Version, so downstream caches
// can tell whether two snapshots of the same evolving graph share an
// edge set. Generation never decreases — removing an edge changes the
// graph, so it must change the version too.
func (d *DiGraph) Generation() uint64 { return d.gen }

// In returns the in-neighbor list of v; the slice is shared and must not
// be modified by the caller. Order is unspecified.
func (d *DiGraph) In(v NodeID) []NodeID { return d.in[v] }

// Out returns the out-neighbor list of v; same sharing caveat as In.
func (d *DiGraph) Out(v NodeID) []NodeID { return d.out[v] }

// InDegree returns |I(v)|.
func (d *DiGraph) InDegree(v NodeID) int { return len(d.in[v]) }

// OutDegree returns the out-degree of v.
func (d *DiGraph) OutDegree(v NodeID) int { return len(d.out[v]) }

// HasEdge reports whether arc x->y (undirected: edge {x,y}) exists.
func (d *DiGraph) HasEdge(x, y NodeID) bool {
	return contains(d.out[x], y)
}

// AddEdge inserts the edge x -> y (both arcs for undirected graphs). It
// returns an error if the edge already exists, is a self-loop, or is out
// of range, so temporal deltas that double-apply are caught early.
func (d *DiGraph) AddEdge(x, y NodeID) error {
	if err := d.check(x, y); err != nil {
		return err
	}
	if d.HasEdge(x, y) {
		return fmt.Errorf("graph: edge (%d,%d) already present", x, y)
	}
	d.addArc(x, y)
	if !d.directed {
		d.addArc(y, x)
	}
	d.gen++
	return nil
}

// RemoveEdge deletes the edge x -> y (both arcs for undirected graphs).
// It returns an error if the edge is absent.
func (d *DiGraph) RemoveEdge(x, y NodeID) error {
	if err := d.check(x, y); err != nil {
		return err
	}
	if !d.HasEdge(x, y) {
		return fmt.Errorf("graph: edge (%d,%d) not present", x, y)
	}
	d.removeArc(x, y)
	if !d.directed {
		d.removeArc(y, x)
	}
	d.gen++
	return nil
}

func (d *DiGraph) check(x, y NodeID) error {
	n := NodeID(len(d.in))
	if x < 0 || x >= n || y < 0 || y >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", x, y, n)
	}
	if x == y {
		return fmt.Errorf("graph: self-loop at node %d not allowed", x)
	}
	return nil
}

func (d *DiGraph) addArc(x, y NodeID) {
	d.out[x] = append(d.out[x], y)
	d.in[y] = append(d.in[y], x)
	d.arcs++
}

func (d *DiGraph) removeArc(x, y NodeID) {
	d.out[x] = swapRemove(d.out[x], y)
	d.in[y] = swapRemove(d.in[y], x)
	d.arcs--
}

// Clone returns a deep copy, used when an algorithm needs to keep the
// previous snapshot while the cursor advances.
func (d *DiGraph) Clone() *DiGraph {
	c := &DiGraph{
		directed: d.directed,
		in:       make([][]NodeID, len(d.in)),
		out:      make([][]NodeID, len(d.out)),
		arcs:     d.arcs,
		gen:      d.gen,
	}
	for v := range d.in {
		c.in[v] = append([]NodeID(nil), d.in[v]...)
		c.out[v] = append([]NodeID(nil), d.out[v]...)
	}
	return c
}

// Freeze produces an immutable CSR view of the current state, stamped
// with the DiGraph's Generation as its Version.
func (d *DiGraph) Freeze() *Graph {
	arcs := make([]Edge, 0, d.arcs)
	for x := NodeID(0); int(x) < len(d.out); x++ {
		for _, y := range d.out[x] {
			arcs = append(arcs, Edge{X: x, Y: y})
		}
	}
	g := fromArcs(len(d.in), d.directed, arcs)
	g.version = d.gen
	return g
}

// Edges returns the edge set: each directed arc once, or each undirected
// edge once with X <= Y. Order is unspecified.
func (d *DiGraph) Edges() []Edge {
	out := make([]Edge, 0, d.NumEdges())
	for x := NodeID(0); int(x) < len(d.out); x++ {
		for _, y := range d.out[x] {
			if d.directed || x <= y {
				out = append(out, Edge{X: x, Y: y})
			}
		}
	}
	return out
}

func contains(s []NodeID, v NodeID) bool {
	for _, u := range s {
		if u == v {
			return true
		}
	}
	return false
}

func swapRemove(s []NodeID, v NodeID) []NodeID {
	for i, u := range s {
		if u == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
