package graph

import (
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderDirected(t *testing.T) {
	g, err := NewBuilder(4, true).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0).AddEdge(0, 2).
		Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if got := g.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if !g.Directed() {
		t.Error("Directed = false, want true")
	}
	if got := g.In(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("In(2) = %v, want [0 1]", got)
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Out(0) = %v, want [1 2]", got)
	}
	if g.InDegree(3) != 0 || g.OutDegree(3) != 0 {
		t.Errorf("node 3 should be isolated")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong for directed arcs")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderUndirected(t *testing.T) {
	g, err := NewBuilder(3, false).AddEdge(0, 1).AddEdge(2, 1).Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if got := g.NumEdges(); got != 2 {
		t.Errorf("NumEdges = %d, want 2", got)
	}
	for _, pair := range [][2]NodeID{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Errorf("HasEdge(%d,%d) = false, want true", pair[0], pair[1])
		}
	}
	if got := g.InDegree(1); got != 2 {
		t.Errorf("InDegree(1) = %d, want 2", got)
	}
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges() has %d entries, want 2", len(edges))
	}
	for _, e := range edges {
		if e.X > e.Y {
			t.Errorf("undirected Edges() entry %v not canonicalized", e)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*Graph, error)
		want string
	}{
		{"self-loop", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(1, 1).Freeze() }, "self-loop"},
		{"out-of-range", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(0, 2).Freeze() }, "out of range"},
		{"negative", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(-1, 0).Freeze() }, "out of range"},
		{"duplicate", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(0, 1).AddEdge(0, 1).Freeze() }, "duplicate"},
		{"dup-undirected", func() (*Graph, error) { return NewBuilder(2, false).AddEdge(0, 1).AddEdge(1, 0).Freeze() }, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.f()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0, true).Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestCSRInvariantsQuick property-checks that Freeze of a random directed
// edge set always yields a valid CSR whose adjacency matches the input.
func TestCSRInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		n := 2 + r.IntN(30)
		seen := map[Edge]struct{}{}
		b := NewBuilder(n, true)
		for i := 0; i < r.IntN(3*n); i++ {
			x, y := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if x == y {
				continue
			}
			e := Edge{X: x, Y: y}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			b.AddEdge(x, y)
		}
		g, err := b.Freeze()
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		if g.NumEdges() != len(seen) {
			return false
		}
		for e := range seen {
			if !g.HasEdge(e.X, e.Y) {
				return false
			}
		}
		got := g.Edges()
		if len(got) != len(seen) {
			return false
		}
		for _, e := range got {
			if _, ok := seen[e]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPaperExample(t *testing.T) {
	g := PaperExample()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantIn := map[string][]string{
		"A": {"B", "C"},
		"B": {"A", "E"},
		"C": {"A", "B", "D"},
		"D": {"B", "C"},
		"E": {"B", "H"},
		"F": {"G"},
		"G": {"F"},
		"H": {"F", "G"},
	}
	for label, want := range wantIn {
		in := g.In(PaperNode(label))
		got := make([]string, len(in))
		for i, v := range in {
			got[i] = PaperLabel(v)
		}
		sort.Strings(got)
		if strings.Join(got, "") != strings.Join(want, "") {
			t.Errorf("I(%s) = %v, want %v", label, got, want)
		}
	}
	// Walk (C, D, B, A) from Example 2 must be feasible.
	path := []string{"C", "D", "B", "A"}
	for i := 0; i+1 < len(path); i++ {
		cur, next := PaperNode(path[i]), PaperNode(path[i+1])
		if !contains(g.In(cur), next) {
			t.Errorf("walk step %s -> %s infeasible: %s not an in-neighbor", path[i], path[i+1], path[i+1])
		}
	}
}

func TestPaperNodeLabelRoundTrip(t *testing.T) {
	for v := NodeID(0); v < 8; v++ {
		if got := PaperNode(PaperLabel(v)); got != v {
			t.Errorf("round trip of %d gave %d", v, got)
		}
	}
	for _, bad := range []string{"", "I", "a", "AB"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PaperNode(%q) did not panic", bad)
				}
			}()
			PaperNode(bad)
		}()
	}
}
