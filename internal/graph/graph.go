// Package graph provides the graph substrate shared by every SimRank
// algorithm in this module: an immutable compressed-sparse-row (CSR)
// representation optimized for the read-heavy random-walk workloads, a
// mutable adjacency-list representation for graphs that evolve over time,
// and edge-list I/O.
//
// SimRank is defined over in-neighbors, so both representations index the
// in-adjacency as the primary direction; out-adjacency is kept as well
// because ProbeSim's probes and CrashSim-T's affected-area computation
// traverse forward edges.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// NodeID identifies a node. Nodes are dense integers in [0, n).
type NodeID = int32

// Edge is a directed edge x -> y. For undirected graphs an Edge denotes
// the undirected pair {X, Y} and both arcs are materialized internally.
type Edge struct {
	X, Y NodeID
}

// Graph is an immutable directed graph in CSR form. Build one with
// NewBuilder or DiGraph.Freeze. The zero value is an empty graph.
type Graph struct {
	n        int
	directed bool
	version  uint64 // generation of the DiGraph this was frozen from

	inOff  []int32  // len n+1; in-adjacency offsets
	inAdj  []NodeID // concatenated in-neighbor lists, sorted per node
	outOff []int32
	outAdj []NodeID
}

// NumNodes returns the number of nodes n.
func (g *Graph) NumNodes() int { return g.n }

// Version identifies the edge-set state this snapshot was frozen from.
// Graphs frozen from a DiGraph carry its Generation, so two freezes of
// an evolving graph get equal versions exactly when no edge changed in
// between — the invalidation signal the serving layer's result cache
// keys on. Builder-frozen graphs carry a content-derived version (a hash
// of the CSR arrays, marked with the high bit so the two version
// families never collide): two distinct builder graphs sharing a cache
// get distinct versions, the same edge list hashes identically across
// runs and processes, and a persisted snapshot can verify on load that
// its recorded version still describes its arrays.
func (g *Graph) Version() uint64 { return g.version }

// contentVersionBit marks content-derived versions. DiGraph generations
// are small counters; forcing the bit keeps the two version families
// disjoint, so a builder-frozen graph can never alias a DiGraph freeze
// in a shared cache.
const contentVersionBit = uint64(1) << 63

// VersionIsContentDerived reports whether v is a content-derived version
// (a Builder-frozen graph's CSR hash) as opposed to a DiGraph
// generation. The persistent-store loader uses it to decide whether a
// snapshot's recorded version can be recomputed and verified.
func VersionIsContentDerived(v uint64) bool { return v&contentVersionBit != 0 }

// contentVersion hashes the graph identity: node count, direction and
// the in-CSR arrays (the out-CSR is derivable from the in-CSR, so
// hashing one side identifies the edge set). FNV-1a over the raw
// little-endian words, deterministic across runs and platforms.
func contentVersion(n int, directed bool, inOff []int32, inAdj []NodeID) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	d := byte(0)
	if directed {
		d = 1
	}
	h.Write([]byte{d})
	for _, v := range inOff {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}
	for _, v := range inAdj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}
	return h.Sum64() | contentVersionBit
}

// NumEdges returns the number of directed arcs for directed graphs, or the
// number of undirected edges for undirected graphs.
func (g *Graph) NumEdges() int {
	if g.directed {
		return len(g.inAdj)
	}
	return len(g.inAdj) / 2
}

// Directed reports whether the graph was built as directed.
func (g *Graph) Directed() bool { return g.directed }

// In returns the in-neighbor list of v. The returned slice is shared with
// the graph and must not be modified.
func (g *Graph) In(v NodeID) []NodeID {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// InCSR exposes the raw in-adjacency CSR arrays: offsets of length n+1
// and the concatenated in-neighbor lists (node v's in-neighbors are
// adj[offsets[v]:offsets[v+1]]). Both slices share the graph's storage
// and must be treated as read-only. Sampling kernels use this to step
// through the adjacency without constructing a slice header per step.
func (g *Graph) InCSR() (offsets []int32, adj []NodeID) {
	return g.inOff, g.inAdj
}

// Out returns the out-neighbor list of v. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Out(v NodeID) []NodeID {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// OutCSR exposes the raw out-adjacency CSR arrays, the forward-direction
// counterpart of InCSR. Both slices share the graph's storage and must
// be treated as read-only. The persistent index store serializes these
// arrays directly.
func (g *Graph) OutCSR() (offsets []int32, adj []NodeID) {
	return g.outOff, g.outAdj
}

// InDegree returns |I(v)|.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutDegree returns the number of out-neighbors of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// HasEdge reports whether the arc x -> y exists (for undirected graphs,
// whether {x,y} exists). Runs in O(log deg).
func (g *Graph) HasEdge(x, y NodeID) bool {
	in := g.In(y)
	i := sort.Search(len(in), func(i int) bool { return in[i] >= x })
	return i < len(in) && in[i] == x
}

// Edges returns all edges of the graph: each directed arc once, or each
// undirected edge once with X <= Y.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := NodeID(0); int(v) < g.n; v++ {
		for _, x := range g.In(v) {
			if g.directed || x <= v {
				out = append(out, Edge{X: x, Y: v})
			}
		}
	}
	return out
}

// Validate checks internal CSR invariants. It is used by tests and by the
// loaders after constructing a graph from untrusted input.
func (g *Graph) Validate() error {
	if len(g.inOff) != g.n+1 || len(g.outOff) != g.n+1 {
		return fmt.Errorf("graph: offset arrays have wrong length (n=%d, in=%d, out=%d)",
			g.n, len(g.inOff), len(g.outOff))
	}
	if err := validateCSR(g.n, g.inOff, g.inAdj, "in"); err != nil {
		return err
	}
	if err := validateCSR(g.n, g.outOff, g.outAdj, "out"); err != nil {
		return err
	}
	if len(g.inAdj) != len(g.outAdj) {
		return fmt.Errorf("graph: in/out arc counts differ (%d vs %d)", len(g.inAdj), len(g.outAdj))
	}
	// Every arc x->y in the in-adjacency of y must appear in the
	// out-adjacency of x.
	for v := NodeID(0); int(v) < g.n; v++ {
		for _, x := range g.In(v) {
			out := g.Out(x)
			i := sort.Search(len(out), func(i int) bool { return out[i] >= v })
			if i >= len(out) || out[i] != v {
				return fmt.Errorf("graph: arc %d->%d present in in-adjacency but missing from out-adjacency", x, v)
			}
		}
	}
	return nil
}

func validateCSR(n int, off []int32, adj []NodeID, dir string) error {
	if off[0] != 0 || int(off[n]) != len(adj) {
		return fmt.Errorf("graph: %s offsets do not span adjacency (first=%d, last=%d, len=%d)",
			dir, off[0], off[n], len(adj))
	}
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] {
			return fmt.Errorf("graph: %s offsets not monotone at node %d", dir, v)
		}
		row := adj[off[v]:off[v+1]]
		for i, u := range row {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: %s adjacency of node %d references out-of-range node %d", dir, v, u)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: %s adjacency of node %d not strictly sorted", dir, v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are rejected at Freeze time with an error, matching
// the simple-graph model SimRank assumes.
type Builder struct {
	n        int
	directed bool
	edges    []Edge
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// AddEdge records the edge x -> y (or the undirected pair {x,y}).
func (b *Builder) AddEdge(x, y NodeID) *Builder {
	b.edges = append(b.edges, Edge{X: x, Y: y})
	return b
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) *Builder {
	b.edges = append(b.edges, edges...)
	return b
}

// Freeze validates the accumulated edges and builds the CSR graph. The
// graph's Version is content-derived: a hash of the CSR arrays, so two
// builder graphs get equal versions exactly when their (n, direction,
// edge set) agree — the identity the serving caches and the persistent
// index store key on.
func (b *Builder) Freeze() (*Graph, error) {
	arcs := make([]Edge, 0, len(b.edges)*2)
	seen := make(map[Edge]struct{}, len(b.edges))
	for _, e := range b.edges {
		if e.X < 0 || int(e.X) >= b.n || e.Y < 0 || int(e.Y) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.X, e.Y, b.n)
		}
		if e.X == e.Y {
			return nil, fmt.Errorf("graph: self-loop at node %d not allowed", e.X)
		}
		key := e
		if !b.directed && key.X > key.Y {
			key.X, key.Y = key.Y, key.X
		}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", e.X, e.Y)
		}
		seen[key] = struct{}{}
		arcs = append(arcs, e)
		if !b.directed {
			arcs = append(arcs, Edge{X: e.Y, Y: e.X})
		}
	}
	g := fromArcs(b.n, b.directed, arcs)
	g.version = contentVersion(g.n, g.directed, g.inOff, g.inAdj)
	return g, nil
}

// MustFreeze is Freeze for statically known-good graphs (tests, examples).
func (b *Builder) MustFreeze() *Graph {
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return g
}

// fromArcs builds the CSR arrays from a list of directed arcs that is
// already deduplicated (and symmetrized, for undirected graphs).
func fromArcs(n int, directed bool, arcs []Edge) *Graph {
	g := &Graph{
		n:        n,
		directed: directed,
		inOff:    make([]int32, n+1),
		outOff:   make([]int32, n+1),
		inAdj:    make([]NodeID, len(arcs)),
		outAdj:   make([]NodeID, len(arcs)),
	}
	for _, e := range arcs {
		g.inOff[e.Y+1]++
		g.outOff[e.X+1]++
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
		g.outOff[v+1] += g.outOff[v]
	}
	inNext := make([]int32, n)
	outNext := make([]int32, n)
	for _, e := range arcs {
		g.inAdj[g.inOff[e.Y]+inNext[e.Y]] = e.X
		inNext[e.Y]++
		g.outAdj[g.outOff[e.X]+outNext[e.X]] = e.Y
		outNext[e.X]++
	}
	for v := NodeID(0); int(v) < n; v++ {
		sortNodeIDs(g.inAdj[g.inOff[v]:g.inOff[v+1]])
		sortNodeIDs(g.outAdj[g.outOff[v]:g.outOff[v+1]])
	}
	return g
}

func sortNodeIDs(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// FromCSR reconstructs an immutable Graph from raw CSR arrays, as read
// back by the persistent index store. The arrays are adopted, not
// copied — the caller must not modify them afterwards. The input is
// treated as untrusted: the full CSR invariants are validated, and a
// content-derived version is recomputed from the arrays and must match
// the recorded one (a DiGraph-generation version cannot be recomputed
// and is adopted as-is; the store's section checksums guard it).
func FromCSR(n int, directed bool, version uint64, inOff []int32, inAdj []NodeID, outOff []int32, outAdj []NodeID) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	g := &Graph{
		n: n, directed: directed, version: version,
		inOff: inOff, inAdj: inAdj, outOff: outOff, outAdj: outAdj,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if VersionIsContentDerived(version) {
		if got := contentVersion(n, directed, inOff, inAdj); got != version {
			return nil, fmt.Errorf("graph: recorded content version %#x does not match arrays (recomputed %#x)", version, got)
		}
	}
	return g, nil
}

// AdoptCSR wraps raw CSR arrays without the O(m log d) full validation
// or version recomputation FromCSR performs: only O(n) shape checks
// (offset lengths, spans, monotonicity) run, and the recorded version
// is adopted as-is. This is the mmap borrow path, where the arrays
// alias a read-only mapping whose section checksum already vouches for
// the bytes; use FromCSR when the input is untrusted. The arrays are
// shared, never copied — for a mapped snapshot they are hardware
// read-only, which the Graph API already promises.
func AdoptCSR(n int, directed bool, version uint64, inOff []int32, inAdj []NodeID, outOff []int32, outAdj []NodeID) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	if len(inOff) != n+1 || len(outOff) != n+1 {
		return nil, fmt.Errorf("graph: offset arrays have wrong length (n=%d, in=%d, out=%d)",
			n, len(inOff), len(outOff))
	}
	for _, s := range [2]struct {
		off []int32
		adj []NodeID
		dir string
	}{{inOff, inAdj, "in"}, {outOff, outAdj, "out"}} {
		if s.off[0] != 0 || int(s.off[n]) != len(s.adj) {
			return nil, fmt.Errorf("graph: %s offsets do not span adjacency (first=%d, last=%d, len=%d)",
				s.dir, s.off[0], s.off[n], len(s.adj))
		}
		for v := 0; v < n; v++ {
			if s.off[v] > s.off[v+1] {
				return nil, fmt.Errorf("graph: %s offsets not monotone at node %d", s.dir, v)
			}
		}
	}
	if len(inAdj) != len(outAdj) {
		return nil, fmt.Errorf("graph: in/out arc counts differ (%d vs %d)", len(inAdj), len(outAdj))
	}
	return &Graph{
		n: n, directed: directed, version: version,
		inOff: inOff, inAdj: inAdj, outOff: outOff, outAdj: outAdj,
	}, nil
}
