package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := PaperExample()
		if !directed {
			var err error
			g, err = NewBuilder(4, false).AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 0).Freeze()
			if err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("ReadEdgeList: %v", err)
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() || got.Directed() != g.Directed() {
			t.Fatalf("round trip mismatch: n=%d/%d m=%d/%d dir=%t/%t",
				got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges(), got.Directed(), g.Directed())
		}
		for _, e := range g.Edges() {
			if !got.HasEdge(e.X, e.Y) {
				t.Errorf("edge %v lost in round trip", e)
			}
		}
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	in := "# a comment\n0 1\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 || !g.Directed() {
		t.Errorf("got n=%d m=%d directed=%t", g.NumNodes(), g.NumEdges(), g.Directed())
	}
}

func TestReadEdgeListHeaderIsolatedNodes(t *testing.T) {
	in := "# crashsim: nodes=10 directed=false\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 10 || g.NumEdges() != 1 || g.Directed() {
		t.Errorf("got n=%d m=%d directed=%t", g.NumNodes(), g.NumEdges(), g.Directed())
	}
}

func TestReadEdgeListNodeLimit(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("999999999 0\n")); err == nil {
		t.Error("absurd node id accepted by default limit")
	}
	if _, err := ReadEdgeListLimit(strings.NewReader("100 0\n"), 50); err == nil {
		t.Error("explicit limit not enforced")
	}
	if _, err := ReadEdgeListLimit(strings.NewReader("100 0\n"), 200); err != nil {
		t.Errorf("within-limit input rejected: %v", err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"too many fields", "0 1 2\n", "want 2 fields"},
		{"bad id", "0 x\n", "bad node id"},
		{"negative id", "0 -1\n", "node id"},
		{"bad header nodes", "# crashsim: nodes=x\n", "bad node count"},
		{"bad header directed", "# crashsim: directed=maybe\n", "bad directed flag"},
		{"unknown header key", "# crashsim: weight=3\n", "unknown header field"},
		{"header missing equals", "# crashsim: nodes\n", "bad header field"},
		{"edge beyond header nodes", "# crashsim: nodes=2 directed=true\n0 5\n", "out of range"},
		{"self-loop", "3 3\n", "self-loop"},
		{"duplicate", "0 1\n0 1\n", "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}
