package graph

// PaperExample returns the 8-node directed graph used as the running
// example in the CrashSim paper (Fig. 2). The figure itself is not fully
// recoverable from the text, so this reconstruction satisfies every
// constraint Example 2 states:
//
//	I(A) = {B, C}            (level-1 tree entries)
//	I(B) = {A, E}, |I(B)| = 2
//	I(C) = {A, B, D}, |I(C)| = 3
//	I(D) = {B, C}, |I(D)| = 2
//	I(E) = {H, B}, |I(E)| = 2
//	I(H) = {F, G}, |I(H)| = 2
//	walk (C, D, B, A) is feasible: D ∈ I(C), B ∈ I(D), A ∈ I(B)
//
// F and G are unconstrained by the text; they form a 2-cycle feeding H so
// that every node has at least one in-neighbor.
func PaperExample() *Graph {
	b := NewBuilder(8, true)
	A, B, C, D, E, F, G, H := PaperNode("A"), PaperNode("B"), PaperNode("C"),
		PaperNode("D"), PaperNode("E"), PaperNode("F"), PaperNode("G"), PaperNode("H")
	b.AddEdge(B, A).AddEdge(C, A)
	b.AddEdge(A, B).AddEdge(E, B)
	b.AddEdge(A, C).AddEdge(B, C).AddEdge(D, C)
	b.AddEdge(B, D).AddEdge(C, D)
	b.AddEdge(H, E).AddEdge(B, E)
	b.AddEdge(G, F)
	b.AddEdge(F, G)
	b.AddEdge(F, H).AddEdge(G, H)
	return b.MustFreeze()
}

// PaperNode maps the paper's node labels "A".."H" to NodeIDs 0..7.
func PaperNode(label string) NodeID {
	if len(label) != 1 || label[0] < 'A' || label[0] > 'H' {
		panic("graph: PaperNode label must be A..H")
	}
	return NodeID(label[0] - 'A')
}

// PaperLabel is the inverse of PaperNode for small example output.
func PaperLabel(v NodeID) string {
	if v < 0 || v > 7 {
		panic("graph: PaperLabel node must be 0..7")
	}
	return string(rune('A' + v))
}
