package graph

// Components computes weakly connected components (treating every arc as
// undirected). It returns a component id per node (ids are dense,
// ordered by smallest member) and the number of components. The dataset
// generators use it to report giant-component coverage, and query
// tooling uses it to sample sources from the giant component the way the
// paper's experiments implicitly do.
func Components(g *Graph) (ids []int, count int) {
	n := g.NumNodes()
	ids = make([]int, n)
	for i := range ids {
		ids[i] = -1
	}
	var queue []NodeID
	for start := NodeID(0); int(start) < n; start++ {
		if ids[start] != -1 {
			continue
		}
		ids[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, adj := range [][]NodeID{g.In(v), g.Out(v)} {
				for _, u := range adj {
					if ids[u] == -1 {
						ids[u] = count
						queue = append(queue, u)
					}
				}
			}
		}
		count++
	}
	return ids, count
}

// GiantComponent returns the sorted nodes of the largest weakly
// connected component.
func GiantComponent(g *Graph) []NodeID {
	ids, count := Components(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, id := range ids {
		sizes[id]++
	}
	best := 0
	for id, s := range sizes {
		if s > sizes[best] {
			best = id
		}
	}
	out := make([]NodeID, 0, sizes[best])
	for v, id := range ids {
		if id == best {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Transpose returns the graph with every arc reversed. For undirected
// graphs it returns an identical copy. SimRank over out-neighbors (the
// "co-citation" variant some applications use) is SimRank over
// in-neighbors of the transpose.
func Transpose(g *Graph) *Graph {
	if !g.directed {
		return fromArcs(g.n, false, allArcs(g))
	}
	arcs := allArcs(g)
	for i := range arcs {
		arcs[i].X, arcs[i].Y = arcs[i].Y, arcs[i].X
	}
	return fromArcs(g.n, true, arcs)
}

// InducedSubgraph returns the subgraph over the given nodes (the
// paper's E(Ω)): nodes are renumbered densely in sorted order, and the
// returned mapping translates new ids back to original ones.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	keep := append([]NodeID(nil), nodes...)
	sortNodeIDs(keep)
	// Deduplicate.
	w := 0
	for i, v := range keep {
		if i == 0 || keep[w-1] != v {
			keep[w] = v
			w++
		}
	}
	keep = keep[:w]
	toNew := make(map[NodeID]NodeID, len(keep))
	for i, v := range keep {
		toNew[v] = NodeID(i)
	}
	var arcs []Edge
	for _, v := range keep {
		for _, x := range g.In(v) {
			if nx, ok := toNew[x]; ok {
				arcs = append(arcs, Edge{X: nx, Y: toNew[v]})
			}
		}
	}
	return fromArcs(len(keep), g.directed, arcs), keep
}

// CountInducedEdges returns |E(Ω)| without materializing the subgraph:
// the number of edges of g with both endpoints in the node set.
func CountInducedEdges(g *Graph, nodes map[NodeID]struct{}) int {
	count := 0
	for v := range nodes {
		for _, x := range g.In(v) {
			if _, ok := nodes[x]; ok {
				count++
			}
		}
	}
	if !g.directed {
		count /= 2
	}
	return count
}

// DegreeHistogram returns counts[d] = number of nodes with in-degree d.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for v := NodeID(0); int(v) < g.n; v++ {
		if d := g.InDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := NodeID(0); int(v) < g.n; v++ {
		counts[g.InDegree(v)]++
	}
	return counts
}

func allArcs(g *Graph) []Edge {
	arcs := make([]Edge, 0, len(g.inAdj))
	for v := NodeID(0); int(v) < g.n; v++ {
		for _, x := range g.In(v) {
			arcs = append(arcs, Edge{X: x, Y: v})
		}
	}
	return arcs
}
