package graph

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestDiGraphAddRemove(t *testing.T) {
	d := NewDiGraph(3, true)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if d.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", d.NumEdges())
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Error("directed HasEdge wrong")
	}
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if d.HasEdge(0, 1) || d.NumEdges() != 1 {
		t.Error("edge not removed")
	}
}

func TestDiGraphErrors(t *testing.T) {
	d := NewDiGraph(3, true)
	mustAdd(t, d, 0, 1)
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"dup add", d.AddEdge(0, 1), "already present"},
		{"self loop", d.AddEdge(2, 2), "self-loop"},
		{"range add", d.AddEdge(0, 3), "out of range"},
		{"missing remove", d.RemoveEdge(1, 2), "not present"},
		{"range remove", d.RemoveEdge(-1, 0), "out of range"},
	}
	for _, tc := range cases {
		if tc.err == nil || !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, tc.err, tc.want)
		}
	}
}

func TestDiGraphUndirected(t *testing.T) {
	d := NewDiGraph(3, false)
	mustAdd(t, d, 0, 1)
	if !d.HasEdge(1, 0) {
		t.Error("undirected edge not symmetric")
	}
	if d.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", d.NumEdges())
	}
	if err := d.RemoveEdge(1, 0); err != nil {
		t.Fatalf("remove via reverse direction: %v", err)
	}
	if d.NumEdges() != 0 || d.HasEdge(0, 1) {
		t.Error("undirected removal incomplete")
	}
}

func TestDiGraphCloneIsolation(t *testing.T) {
	d := NewDiGraph(3, true)
	mustAdd(t, d, 0, 1)
	c := d.Clone()
	mustAdd(t, d, 1, 2)
	if c.HasEdge(1, 2) {
		t.Error("clone shares storage with original")
	}
	if c.NumEdges() != 1 || d.NumEdges() != 2 {
		t.Errorf("edge counts: clone=%d orig=%d", c.NumEdges(), d.NumEdges())
	}
}

// TestDiGraphFreezeQuick property-checks that a random mutation sequence
// applied to a DiGraph freezes to a Graph with exactly the surviving
// edges, for both directed and undirected graphs.
func TestDiGraphFreezeQuick(t *testing.T) {
	f := func(seed uint64, directed bool) bool {
		r := rand.New(rand.NewPCG(seed, 42))
		n := 2 + r.IntN(20)
		d := NewDiGraph(n, directed)
		live := map[Edge]struct{}{}
		canon := func(e Edge) Edge {
			if !directed && e.X > e.Y {
				e.X, e.Y = e.Y, e.X
			}
			return e
		}
		for i := 0; i < 100; i++ {
			x, y := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if x == y {
				continue
			}
			e := canon(Edge{X: x, Y: y})
			if _, ok := live[e]; ok {
				if d.RemoveEdge(e.X, e.Y) != nil {
					return false
				}
				delete(live, e)
			} else {
				if d.AddEdge(e.X, e.Y) != nil {
					return false
				}
				live[e] = struct{}{}
			}
		}
		g := d.Freeze()
		if g.Validate() != nil || g.NumEdges() != len(live) {
			return false
		}
		for e := range live {
			if !g.HasEdge(e.X, e.Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustAdd(t *testing.T, d *DiGraph, x, y NodeID) {
	t.Helper()
	if err := d.AddEdge(x, y); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", x, y, err)
	}
}
