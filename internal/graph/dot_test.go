package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTDirected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, PaperExample(), func(v NodeID) string { return PaperLabel(v) }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph crashsim {") {
		t.Errorf("missing digraph header:\n%s", out)
	}
	for _, want := range []string{`[label="A"]`, `[label="H"]`, "n1 -> n0;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT output", want)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("missing closing brace")
	}
}

func TestWriteDOTUndirected(t *testing.T) {
	g := NewBuilder(3, false).AddEdge(0, 1).MustFreeze()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph crashsim {") {
		t.Errorf("undirected header wrong:\n%s", out)
	}
	if !strings.Contains(out, "n0 -- n1;") {
		t.Errorf("undirected edge syntax wrong:\n%s", out)
	}
	if strings.Contains(out, "->") {
		t.Error("undirected output contains directed arrows")
	}
}
