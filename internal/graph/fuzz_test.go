package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that the edge-list parser never panics and
// that every successfully parsed graph is internally consistent and
// round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# crashsim: nodes=5 directed=false\n0 1\n")
	f.Add("# comment\n\n3 4\n")
	f.Add("0 0\n")
	f.Add("x y\n")
	f.Add("# crashsim: nodes=-1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeListLimit(strings.NewReader(input), 1<<16)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\noutput: %q", err, buf.String())
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed graph: %d/%d vs %d/%d",
				back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
		}
	})
}
