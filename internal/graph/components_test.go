package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestComponents(t *testing.T) {
	// Two components: {0,1,2} (directed chain) and {3,4}; 5 isolated.
	g := NewBuilder(6, true).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(4, 3).
		MustFreeze()
	ids, count := Components(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("chain split across components: %v", ids)
	}
	if ids[3] != ids[4] || ids[3] == ids[0] {
		t.Errorf("pair component wrong: %v", ids)
	}
	if ids[5] == ids[0] || ids[5] == ids[3] {
		t.Errorf("isolated node merged: %v", ids)
	}
}

func TestGiantComponent(t *testing.T) {
	g := NewBuilder(7, false).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3). // size 4
		AddEdge(4, 5).                             // size 2
		MustFreeze()
	giant := GiantComponent(g)
	if !reflect.DeepEqual(giant, []NodeID{0, 1, 2, 3}) {
		t.Errorf("giant = %v", giant)
	}
	empty, _ := NewBuilder(0, true).Freeze()
	if GiantComponent(empty) != nil {
		t.Error("empty graph should have nil giant component")
	}
}

func TestTranspose(t *testing.T) {
	g := NewBuilder(3, true).AddEdge(0, 1).AddEdge(1, 2).MustFreeze()
	tr := Transpose(g)
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || tr.HasEdge(0, 1) {
		t.Error("transpose arcs wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Transposing twice is the identity.
	back := Transpose(tr)
	for _, e := range g.Edges() {
		if !back.HasEdge(e.X, e.Y) {
			t.Errorf("double transpose lost %v", e)
		}
	}
	// Undirected transpose is a copy.
	u := NewBuilder(3, false).AddEdge(0, 1).MustFreeze()
	ut := Transpose(u)
	if !ut.HasEdge(0, 1) || !ut.HasEdge(1, 0) || ut.NumEdges() != 1 {
		t.Error("undirected transpose wrong")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := PaperExample()
	nodes := []NodeID{PaperNode("A"), PaperNode("B"), PaperNode("C"), PaperNode("C")}
	sub, mapping := InducedSubgraph(g, nodes)
	if sub.NumNodes() != 3 {
		t.Fatalf("sub has %d nodes (duplicates not removed?)", sub.NumNodes())
	}
	if !reflect.DeepEqual(mapping, []NodeID{0, 1, 2}) { // A, B, C sorted
		t.Errorf("mapping = %v", mapping)
	}
	// Edges among {A,B,C}: B->A, C->A, A->B, A->C, B->C = 5 arcs.
	if sub.NumEdges() != 5 {
		t.Errorf("sub has %d edges, want 5", sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCountInducedEdges(t *testing.T) {
	g := PaperExample()
	set := map[NodeID]struct{}{
		PaperNode("A"): {}, PaperNode("B"): {}, PaperNode("C"): {},
	}
	if got := CountInducedEdges(g, set); got != 5 {
		t.Errorf("CountInducedEdges = %d, want 5", got)
	}
	// Must match the materialized subgraph for random node sets.
	f := func(mask uint8) bool {
		var nodes []NodeID
		set := map[NodeID]struct{}{}
		for v := NodeID(0); v < 8; v++ {
			if mask&(1<<v) != 0 {
				nodes = append(nodes, v)
				set[v] = struct{}{}
			}
		}
		sub, _ := InducedSubgraph(g, nodes)
		return CountInducedEdges(g, set) == sub.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := PaperExample()
	h := DegreeHistogram(g)
	// In-degrees: A=2 B=2 C=3 D=2 E=2 F=1 G=1 H=2.
	want := []int{0, 2, 5, 1}
	if !reflect.DeepEqual(h, want) {
		t.Errorf("histogram = %v, want %v", h, want)
	}
	total := 0
	for d, c := range h {
		total += d * c
	}
	if total != 15 {
		t.Errorf("degree mass = %d, want 15 arcs", total)
	}
}
