package graph

import "sort"

// Stats summarizes the structural properties that govern the cost of
// SimRank computation: size, degree distribution skew, and the number of
// dangling nodes (nodes with no in-neighbors, where √c-walks terminate).
type Stats struct {
	Nodes       int
	Edges       int
	Directed    bool
	MaxInDeg    int
	MaxOutDeg   int
	MeanInDeg   float64
	MedianInDeg int
	DanglingIn  int // nodes with InDegree == 0
	DanglingOut int // nodes with OutDegree == 0
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), Directed: g.Directed()}
	if s.Nodes == 0 {
		return s
	}
	inDegs := make([]int, s.Nodes)
	totalIn := 0
	for v := NodeID(0); int(v) < s.Nodes; v++ {
		in, out := g.InDegree(v), g.OutDegree(v)
		inDegs[v] = in
		totalIn += in
		if in > s.MaxInDeg {
			s.MaxInDeg = in
		}
		if out > s.MaxOutDeg {
			s.MaxOutDeg = out
		}
		if in == 0 {
			s.DanglingIn++
		}
		if out == 0 {
			s.DanglingOut++
		}
	}
	s.MeanInDeg = float64(totalIn) / float64(s.Nodes)
	sort.Ints(inDegs)
	s.MedianInDeg = inDegs[s.Nodes/2]
	return s
}

// BFSOut returns, for every node, its forward (out-edge) BFS distance from
// src, or -1 if unreachable. Used by tests and by affected-area analysis.
func BFSOut(g *Graph, src NodeID) []int {
	return bfs(g.NumNodes(), src, g.Out)
}

// BFSIn is BFSOut over reverse (in-edge) direction.
func BFSIn(g *Graph, src NodeID) []int {
	return bfs(g.NumNodes(), src, g.In)
}

func bfs(n int, src NodeID, adj func(NodeID) []NodeID) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ReachableWithin returns the set of nodes reachable from src by following
// out-edges in at most depth hops, including src itself. CrashSim-T's
// delta pruning uses this to compute the affected area of a changed edge
// (Theorem 2: the l_max-1 length reachable nodes of the edge head).
func ReachableWithin(g *Graph, src NodeID, depth int) []NodeID {
	seen := map[NodeID]struct{}{src: {}}
	frontier := []NodeID{src}
	result := []NodeID{src}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []NodeID
		for _, v := range frontier {
			for _, u := range g.Out(v) {
				if _, ok := seen[u]; ok {
					continue
				}
				seen[u] = struct{}{}
				next = append(next, u)
				result = append(result, u)
			}
		}
		frontier = next
	}
	sortNodeIDs(result)
	return result
}
