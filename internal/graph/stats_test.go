package graph

import (
	"reflect"
	"testing"
)

func TestComputeStats(t *testing.T) {
	g := PaperExample()
	s := ComputeStats(g)
	if s.Nodes != 8 || s.Edges != 15 || !s.Directed {
		t.Errorf("basic stats wrong: %+v", s)
	}
	if s.MaxInDeg != 3 { // I(C) = {A, B, D}
		t.Errorf("MaxInDeg = %d, want 3", s.MaxInDeg)
	}
	if s.DanglingIn != 0 {
		t.Errorf("DanglingIn = %d, want 0 (every example node has an in-neighbor)", s.DanglingIn)
	}
	if want := 15.0 / 8.0; s.MeanInDeg != want {
		t.Errorf("MeanInDeg = %g, want %g", s.MeanInDeg, want)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g, _ := NewBuilder(0, true).Freeze()
	s := ComputeStats(g)
	if s.Nodes != 0 || s.Edges != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestBFS(t *testing.T) {
	// 0 -> 1 -> 2, 3 isolated.
	g := NewBuilder(4, true).AddEdge(0, 1).AddEdge(1, 2).MustFreeze()
	if got := BFSOut(g, 0); !reflect.DeepEqual(got, []int{0, 1, 2, -1}) {
		t.Errorf("BFSOut = %v", got)
	}
	if got := BFSIn(g, 2); !reflect.DeepEqual(got, []int{2, 1, 0, -1}) {
		t.Errorf("BFSIn = %v", got)
	}
}

func TestReachableWithin(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 2.
	g := NewBuilder(5, true).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(0, 2).MustFreeze()
	cases := []struct {
		depth int
		want  []NodeID
	}{
		{0, []NodeID{0}},
		{1, []NodeID{0, 1, 2}},
		{2, []NodeID{0, 1, 2, 3}},
		{10, []NodeID{0, 1, 2, 3}},
	}
	for _, tc := range cases {
		if got := ReachableWithin(g, 0, tc.depth); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ReachableWithin(depth=%d) = %v, want %v", tc.depth, got, tc.want)
		}
	}
}
