package crashsim

import (
	"io"

	"crashsim/internal/core"
	"crashsim/internal/metrics"
	"crashsim/internal/recommend"
	"crashsim/internal/temporal"
	"crashsim/internal/tempq"
)

// TemporalGraph is a sequence of snapshots over a fixed node set
// (Definition 2 of the paper).
type TemporalGraph = temporal.Graph

// Delta is the edge difference between consecutive snapshots.
type Delta = temporal.Delta

// NewTemporalGraph builds a temporal graph from the first snapshot's
// edges plus one delta per transition, validating the whole history.
func NewTemporalGraph(n int, directed bool, initial []Edge, deltas []Delta) (*TemporalGraph, error) {
	return temporal.New(n, directed, initial, deltas)
}

// FromSnapshots builds a temporal graph from fully materialized snapshot
// edge sets, deriving the deltas.
func FromSnapshots(n int, directed bool, snaps [][]Edge) (*TemporalGraph, error) {
	return temporal.FromSnapshots(n, directed, snaps)
}

// LoadTemporal reads the temporal edge-list format (see
// internal/temporal: a "# crashsim-temporal:" header followed by
// "t op x y" lines).
func LoadTemporal(r io.Reader) (*TemporalGraph, error) {
	return temporal.Read(r)
}

// SaveTemporal writes tg in the format LoadTemporal reads.
func SaveTemporal(w io.Writer, tg *TemporalGraph) error {
	return temporal.Write(w, tg)
}

// TemporalQuery is the per-snapshot predicate of a temporal SimRank
// query; construct one with TrendQuery or ThresholdQuery.
type TemporalQuery = core.TemporalQuery

// TrendDirection selects increasing or decreasing trend queries.
type TrendDirection = tempq.Direction

// Trend directions.
const (
	Increasing = tempq.Increasing
	Decreasing = tempq.Decreasing
)

// TrendQuery builds a Temporal SimRank Trend Query (Definition 4): keep
// nodes whose similarity to the source moves monotonically in the given
// direction across the whole interval, within an additive slack that
// absorbs Monte-Carlo noise (0 is the strict definition).
func TrendQuery(dir TrendDirection, slack float64) TemporalQuery {
	return tempq.Trend{Direction: dir, Slack: slack}
}

// ThresholdQuery builds a Temporal SimRank Thresholds Query
// (Definition 5): keep nodes whose similarity stays at or above theta at
// every snapshot.
func ThresholdQuery(theta float64) TemporalQuery {
	return tempq.Threshold{Theta: theta}
}

// BandQuery keeps nodes whose similarity stays inside [low, high] at
// every snapshot — a stability query generalizing ThresholdQuery.
func BandQuery(low, high float64) TemporalQuery {
	return tempq.Band{Low: low, High: high}
}

// Recommendations is the outcome of a temporal recommendation query
// (Example 1 of the paper): the stable similar users and the ranked
// items their purchases suggest.
type Recommendations = recommend.Result

// RecommendForUser finds users whose similarity to the target stays at
// or above theta over the whole history (via CrashSim-T) and ranks the
// items that group owns which the target lacks.
func RecommendForUser(tg *TemporalGraph, target NodeID, numUsers int, theta float64, k int, opt Options) (*Recommendations, error) {
	return recommend.ForUser(tg, target, recommend.Options{
		NumUsers: numUsers,
		Theta:    theta,
		K:        k,
		Params:   opt.params(),
	})
}

// DurableNode is one answer of a durable top-k query.
type DurableNode = tempq.DurableResult

// DurableTopK returns the k nodes whose minimum similarity to u across
// the whole interval is highest — the most persistently similar nodes.
func DurableTopK(tg *TemporalGraph, u NodeID, k int, opt Options) ([]DurableNode, error) {
	return tempq.DurableTopK(tg, u, k, opt.params(), core.TemporalOptions{})
}

// TemporalResult is the outcome of QueryTemporal.
type TemporalResult struct {
	// Omega is the final candidate set, sorted by node id: every node
	// whose score satisfied the query at every snapshot.
	Omega []NodeID
	// Final holds the last snapshot's scores for the surviving nodes.
	Final Scores
	// Stats reports how much work the pruning rules avoided.
	Stats core.TemporalStats
}

// QueryTemporal answers a temporal SimRank query with CrashSim-T
// (Algorithm 3): per-snapshot partial recomputation with delta and
// difference pruning.
func QueryTemporal(tg *TemporalGraph, u NodeID, q TemporalQuery, opt Options) (*TemporalResult, error) {
	res, err := core.CrashSimT(tg, u, q, opt.params(), core.TemporalOptions{})
	if err != nil {
		return nil, err
	}
	return &TemporalResult{Omega: res.Omega, Final: res.Final, Stats: res.Stats}, nil
}

// QueryTemporalInterval is QueryTemporal restricted to the query
// interval [from, to) of tg's snapshots — Definition 3's [T_1, T_t].
func QueryTemporalInterval(tg *TemporalGraph, u NodeID, q TemporalQuery, from, to int, opt Options) (*TemporalResult, error) {
	sub, err := tg.Slice(from, to)
	if err != nil {
		return nil, err
	}
	return QueryTemporal(sub, u, q, opt)
}

// TopSimilar returns the k highest-scoring nodes of a score map,
// excluding the source, ties broken by node id.
func TopSimilar(s Scores, source NodeID, k int) []NodeID {
	return metrics.TopK(s, source, k)
}
