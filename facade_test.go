package crashsim_test

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"crashsim"
)

func TestQuickstartFlow(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	scores, err := crashsim.SingleSource(g, 0, crashsim.Options{Iterations: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 1 {
		t.Errorf("self score = %g", scores[0])
	}
	top := crashsim.TopSimilar(scores, 0, 3)
	if len(top) != 3 {
		t.Fatalf("TopSimilar returned %d nodes", len(top))
	}
	for _, v := range top {
		if v == 0 {
			t.Error("source in TopSimilar output")
		}
	}
}

func TestFacadeAgainstExact(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	gt, err := crashsim.Exact(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := crashsim.SingleSource(g, 2, crashsim.Options{C: 0.6, Eps: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v, got := range scores {
		if d := math.Abs(got - gt.Sim(2, v)); d > 0.08 {
			t.Errorf("node %d: |%.4f - %.4f| = %.4f", v, got, gt.Sim(2, v), d)
		}
	}
}

func TestPartialMatchesSingleSource(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	opt := crashsim.Options{Iterations: 300, Seed: 9}
	full, err := crashsim.SingleSource(g, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	part, err := crashsim.Partial(g, 1, []crashsim.NodeID{3, 5}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 2 || part[3] != full[3] || part[5] != full[5] {
		t.Errorf("partial %v inconsistent with full scores", part)
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	var buf bytes.Buffer
	if err := crashsim.SaveGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := crashsim.LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Error("round trip changed the graph")
	}
}

func TestTemporalFacade(t *testing.T) {
	tg, err := crashsim.NewTemporalGraph(4, true,
		[]crashsim.Edge{{X: 2, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 2}},
		[]crashsim.Delta{{Del: []crashsim.Edge{{X: 2, Y: 1}}, Add: []crashsim.Edge{{X: 3, Y: 1}}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crashsim.QueryTemporal(tg, 0, crashsim.ThresholdQuery(0.3),
		crashsim.Options{Iterations: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 shares in-neighbor 2 with node 0 only in snapshot 0; after
	// the rewire its similarity collapses below the threshold.
	for _, v := range res.Omega {
		if v == 1 {
			t.Errorf("node 1 survived threshold query: %v", res.Omega)
		}
	}
	if res.Stats.Snapshots != 2 {
		t.Errorf("Stats.Snapshots = %d", res.Stats.Snapshots)
	}

	var buf bytes.Buffer
	if err := crashsim.SaveTemporal(&buf, tg); err != nil {
		t.Fatal(err)
	}
	got, err := crashsim.LoadTemporal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSnapshots() != 2 || got.NumNodes() != 4 {
		t.Error("temporal round trip changed the graph")
	}
}

func TestTrendQueryDirections(t *testing.T) {
	inc := crashsim.TrendQuery(crashsim.Increasing, 0.01)
	if !inc.Keep(1, 0.2, 0.3) || inc.Keep(1, 0.3, 0.1) {
		t.Error("increasing trend predicate wrong")
	}
	dec := crashsim.TrendQuery(crashsim.Decreasing, 0.01)
	if !dec.Keep(1, 0.3, 0.2) || dec.Keep(1, 0.1, 0.3) {
		t.Error("decreasing trend predicate wrong")
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	gt, err := crashsim.Exact(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}

	ps, err := crashsim.BaselineProbeSim(g, 0, crashsim.Options{Iterations: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := crashsim.BuildSLING(g, crashsim.Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	slScores, err := sl.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := crashsim.BuildREADS(g, 2000, crashsim.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rdScores, err := rd.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}

	for name, scores := range map[string]crashsim.Scores{"probesim": ps, "sling": slScores, "reads": rdScores} {
		tol := 0.08
		if name == "reads" {
			tol = 0.15 // READS has no error guarantee (paper Fig 5)
		}
		for v := crashsim.NodeID(0); int(v) < g.NumNodes(); v++ {
			if d := math.Abs(scores[v] - gt.Sim(0, v)); d > tol {
				t.Errorf("%s: node %d off by %.4f", name, v, d)
			}
		}
	}

	// READS incremental update keeps working through the facade.
	if err := rd.ApplyEdge(crashsim.Edge{X: 0, Y: 3}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.SingleSource(0); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSourceWithError(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	opt := crashsim.Options{Iterations: 400, Seed: 3}
	plain, err := crashsim.SingleSource(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	withErr, err := crashsim.SingleSourceWithError(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v, e := range withErr {
		if e.Score != plain[v] {
			t.Errorf("node %d: %g != %g", v, e.Score, plain[v])
		}
	}
}

func TestLinearSolver(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	gt, err := crashsim.Exact(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := crashsim.NewLinearSolver(g, crashsim.Options{C: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ls.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if d := math.Abs(col[v] - gt.Sim(0, crashsim.NodeID(v))); d > 0.06 {
			t.Errorf("node %d off by %.4f", v, d)
		}
	}
}

func TestMultiSourceFacade(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	opt := crashsim.Options{Iterations: 200, Seed: 5, Workers: 2}
	batch, err := crashsim.MultiSource(g, []crashsim.NodeID{0, 3}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0][0] != 1 || batch[3][3] != 1 {
		t.Errorf("batch results wrong: %v", batch)
	}
}

func TestDurableTopKFacade(t *testing.T) {
	tg, err := crashsim.NewTemporalGraph(4, true,
		[]crashsim.Edge{{X: 2, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 2}},
		[]crashsim.Delta{{Del: []crashsim.Edge{{X: 2, Y: 1}}, Add: []crashsim.Edge{{X: 3, Y: 1}}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	top, err := crashsim.DurableTopK(tg, 0, 2, crashsim.Options{Iterations: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d results", len(top))
	}
	if top[0].MinScore < top[1].MinScore {
		t.Error("durable results not sorted")
	}
}

func TestQueryTemporalInterval(t *testing.T) {
	// Three snapshots; node 1 is similar to 0 only from snapshot 1 on.
	tg, err := crashsim.NewTemporalGraph(4, true,
		[]crashsim.Edge{{X: 2, Y: 0}, {X: 3, Y: 1}, {X: 3, Y: 2}},
		[]crashsim.Delta{
			{Del: []crashsim.Edge{{X: 3, Y: 1}}, Add: []crashsim.Edge{{X: 2, Y: 1}}},
			{},
		})
	if err != nil {
		t.Fatal(err)
	}
	opt := crashsim.Options{Iterations: 500, Seed: 9}
	full, err := crashsim.QueryTemporal(tg, 0, crashsim.ThresholdQuery(0.3), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Over the whole history node 1 fails at snapshot 0.
	for _, v := range full.Omega {
		if v == 1 {
			t.Errorf("node 1 survived the full interval: %v", full.Omega)
		}
	}
	// Over [1, 3) it is similar throughout and survives.
	late, err := crashsim.QueryTemporalInterval(tg, 0, crashsim.ThresholdQuery(0.3), 1, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range late.Omega {
		if v == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("node 1 missing from late-interval result: %v", late.Omega)
	}
	if _, err := crashsim.QueryTemporalInterval(tg, 0, crashsim.ThresholdQuery(0.3), 2, 1, opt); err == nil {
		t.Error("bad interval accepted")
	}
}

func TestBandQueryFacade(t *testing.T) {
	q := crashsim.BandQuery(0.1, 0.5)
	if !q.Keep(1, 0, 0.3) || q.Keep(1, 0, 0.6) || q.Keep(1, 0, 0.05) {
		t.Error("band predicate wrong")
	}
}

func TestSinglePairFacade(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	gt, err := crashsim.ExactPair(g, 0, 3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := crashsim.SinglePair(g, 0, 3, crashsim.Options{Iterations: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-gt) > 0.05 {
		t.Errorf("SinglePair %.4f vs exact %.4f", got, gt)
	}
}

func TestClusterFacade(t *testing.T) {
	// Two disconnected triangles cluster cleanly.
	g, err := crashsim.NewGraphBuilder(6, false).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0).
		AddEdge(3, 4).AddEdge(4, 5).AddEdge(5, 3).
		Freeze()
	if err != nil {
		t.Fatal(err)
	}
	res, err := crashsim.ClusterGraph(g, 0.1, crashsim.Options{Iterations: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		low, high := false, false
		for _, v := range c.Members {
			if v < 3 {
				low = true
			} else {
				high = true
			}
		}
		if low && high {
			t.Errorf("cluster spans both triangles: %v", c.Members)
		}
	}
	if cov := crashsim.ClusterCoverage(g, res); cov < 0 || cov > 1 {
		t.Errorf("coverage %g out of range", cov)
	}
	if aff := crashsim.ClusterAffinity(g, res); aff < 0 || aff > 1 {
		t.Errorf("affinity %g out of range", aff)
	}
}

func TestRecommendFacade(t *testing.T) {
	opt := crashsim.PurchaseGraphOptions{
		Users: 16, Items: 32, Groups: 4, PurchasesPerUser: 4,
		Snapshots: 4, DriftRate: 0.2, Seed: 6,
	}
	tg, _, err := crashsim.GeneratePurchaseGraph(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crashsim.RecommendForUser(tg, 0, opt.Users, 0.03, 5,
		crashsim.Options{Iterations: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StableUsers) == 0 {
		t.Error("no stable users on a zero-switch workload")
	}
	for _, rec := range res.Items {
		if int(rec.Item) < opt.Users {
			t.Errorf("recommended a user: %v", rec)
		}
	}
}

func TestFromSnapshotsFacade(t *testing.T) {
	tg, err := crashsim.FromSnapshots(3, true, [][]crashsim.Edge{
		{{X: 0, Y: 1}},
		{{X: 0, Y: 1}, {X: 1, Y: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumSnapshots() != 2 {
		t.Errorf("snapshots = %d", tg.NumSnapshots())
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	bad := crashsim.Options{C: 9}
	if _, err := crashsim.BaselineProbeSim(g, 0, bad); err == nil {
		t.Error("probesim bad options accepted")
	}
	if _, err := crashsim.BuildSLING(g, bad); err == nil {
		t.Error("sling bad options accepted")
	}
	if _, err := crashsim.BuildREADS(g, 5, bad); err == nil {
		t.Error("reads bad options accepted")
	}
	if _, err := crashsim.NewLinearSolver(g, bad); err == nil {
		t.Error("linsim bad options accepted")
	}
	sl, err := crashsim.BuildSLING(g, crashsim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sl.SingleSource(99); err == nil {
		t.Error("sling bad source accepted")
	}
	rd, err := crashsim.BuildREADS(g, 5, crashsim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.SingleSource(99); err == nil {
		t.Error("reads bad source accepted")
	}
	if _, err := crashsim.QueryTemporal(nil, 0, nil, crashsim.Options{}); err == nil {
		t.Error("nil query accepted")
	}
}

func TestDatasets(t *testing.T) {
	ds := crashsim.Datasets()
	if len(ds) != 5 {
		t.Fatalf("Datasets returned %d profiles", len(ds))
	}
	p, err := crashsim.Dataset("hepth")
	if err != nil {
		t.Fatal(err)
	}
	g, err := crashsim.GenerateStatic(p, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 100 {
		t.Errorf("generated graph too small: %d nodes", g.NumNodes())
	}
	tg, err := crashsim.GenerateTemporal(p, 0.02, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumSnapshots() != 5 {
		t.Errorf("snapshots = %d, want 5", tg.NumSnapshots())
	}
	if _, err := crashsim.Dataset("bogus"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNewCachedEstimatorFacade(t *testing.T) {
	g := crashsim.PaperExampleGraph()
	opt := crashsim.Options{Iterations: 300, Seed: 1}
	ctx := context.Background()

	plain, err := crashsim.NewEstimator(ctx, "crashsim", g, opt)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := crashsim.NewCachedEstimator(ctx, "crashsim", g, opt,
		crashsim.CacheOptions{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.SingleSource(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // cold then warm
		got, err := cached.SingleSource(ctx, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached estimator diverges from uncached", pass)
		}
	}
	if _, err := crashsim.NewCachedEstimator(ctx, "crashsim", g, opt, crashsim.CacheOptions{}); err == nil {
		t.Fatal("NewCachedEstimator accepted a zero-byte cache")
	}
}
