// Benchmarks regenerating each table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index). Each
// benchmark wraps the corresponding internal/bench runner at a reduced
// scale so `go test -bench=.` completes in minutes; cmd/repro runs the
// same runners with configurable (larger) scales and prints the tables.
package crashsim_test

import (
	"testing"

	"crashsim/internal/bench"
)

// benchConfig is the shared reduced-scale configuration. Results are
// deterministic for a given seed, so iterations measure stable work.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:            0.02,
		TemporalScale:    0.01,
		Fig7Scale:        0.01,
		Sources:          3,
		Snapshots:        4,
		Fig7Snapshots:    []int{10, 20},
		GroundTruthIters: 30,
		SlingDSamples:    60,
		ReadsR:           60,
		Seed:             1,
	}
}

// BenchmarkTable2PowerMethod regenerates Table II: exact SimRank scores
// with respect to node A on the running-example graph.
func BenchmarkTable2PowerMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Generate regenerates Table III: the five dataset
// stand-ins with their measured sizes.
func BenchmarkTable3Generate(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig 5: single-source response time and max
// error for CrashSim (ε sweep) vs ProbeSim, SLING and READS on the five
// static datasets.
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Fig 6: precision of temporal trend and
// threshold queries across engines.
func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig 7: total response time of the temporal
// trend query as the query interval grows.
func BenchmarkFig7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimator regenerates the estimator design ablation
// (transition rule, meeting rule, non-backtracking tree).
func BenchmarkAblationEstimator(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationEstimator(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPruning regenerates the CrashSim-T pruning ablation.
func BenchmarkAblationPruning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPruning(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtra regenerates the extended comparison (paper baselines
// plus TSF, Fogaras MC and the linearized solver).
func BenchmarkExtra(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Extra(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaling regenerates the size-scaling experiment (single-
// source time vs n for the index-free methods).
func BenchmarkScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Scaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelComparison regenerates the crash-kernel before/after
// comparison (legacy map kernel vs compiled frozen tree) behind
// BENCH_crashsim.json.
func BenchmarkKernelComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Kernel(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughput regenerates the multi-source batch throughput
// comparison (one batched call vs a sequential query loop over the same
// Zipf-skewed sources) behind BENCH_crashsim.json's batch section.
func BenchmarkThroughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Throughput(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemory regenerates the index-footprint comparison.
func BenchmarkMemory(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Memory(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStore regenerates the index-persistence comparison (cold
// index build vs warm snapshot load, internal/store) behind
// BENCH_crashsim.json's store section.
func BenchmarkStore(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Store(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRSim regenerates the PRSim hub-index comparison (map-based
// skeleton vs compiled flat tables, internal/prsim) behind
// BENCH_crashsim.json's prsim section.
func BenchmarkPRSim(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.PRSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
