package crashsim_test

import (
	"fmt"

	"crashsim"
)

// ExampleSingleSource demonstrates the core query: SimRank estimates
// from one source to all nodes, with the paper's default guarantees.
func ExampleSingleSource() {
	g, _ := crashsim.NewGraphBuilder(4, true).
		AddEdge(2, 0).AddEdge(2, 1). // 0 and 1 share in-neighbor 2
		AddEdge(3, 2).
		Freeze()
	scores, _ := crashsim.SingleSource(g, 0, crashsim.Options{Iterations: 20000, Seed: 1})
	fmt.Printf("sim(0,0) = %.1f\n", scores[0])
	fmt.Printf("sim(0,1) ~ c = %.1f\n", scores[1])
	// Output:
	// sim(0,0) = 1.0
	// sim(0,1) ~ c = 0.6
}

// ExampleTopK ranks the nodes most similar to a source.
func ExampleTopK() {
	g := crashsim.PaperExampleGraph()
	top, _ := crashsim.TopK(g, 0, 2, crashsim.Options{Iterations: 4000, Seed: 1})
	for i, r := range top {
		fmt.Printf("%d. node %c\n", i+1, 'A'+rune(r.Node))
	}
	// Output:
	// 1. node D
	// 2. node E
}

// ExampleQueryTemporal answers a temporal threshold query: which nodes
// stay similar to the source across every snapshot.
func ExampleQueryTemporal() {
	tg, _ := crashsim.NewTemporalGraph(4, true,
		[]crashsim.Edge{{X: 2, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 2}},
		[]crashsim.Delta{{
			Del: []crashsim.Edge{{X: 2, Y: 1}},
			Add: []crashsim.Edge{{X: 3, Y: 1}},
		}})
	res, _ := crashsim.QueryTemporal(tg, 0, crashsim.ThresholdQuery(0.3),
		crashsim.Options{Iterations: 2000, Seed: 1})
	fmt.Println("stable nodes:", res.Omega)
	// Output:
	// stable nodes: [0]
}

// ExampleExactPair computes one exact SimRank value without the full
// all-pairs matrix.
func ExampleExactPair() {
	g := crashsim.PaperExampleGraph()
	s, _ := crashsim.ExactPair(g, 0, 3, 0.6) // sim(A, D)
	fmt.Printf("sim(A,D) = %.4f\n", s)
	// Output:
	// sim(A,D) = 0.3542
}
