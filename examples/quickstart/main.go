// Quickstart: build a small graph, compute single-source SimRank with
// CrashSim, and compare against the exact Power Method.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crashsim"
)

func main() {
	// The paper's running-example graph (8 nodes, A..H as 0..7).
	g := crashsim.PaperExampleGraph()
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// Single-source SimRank from node A with the default guarantees
	// (c = 0.6, |error| <= 0.025 with probability >= 0.99 per node).
	const source = crashsim.NodeID(0)
	scores, err := crashsim.SingleSource(g, source, crashsim.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Exact values for comparison (feasible here: the graph is tiny).
	exact, err := crashsim.Exact(g, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nnodes most similar to A:")
	for rank, v := range crashsim.TopSimilar(scores, source, 5) {
		fmt.Printf("%d. node %c  crashsim=%.4f  exact=%.4f\n",
			rank+1, 'A'+rune(v), scores[v], exact.Sim(source, v))
	}
}
