// Dynamic: SimRank under a live stream of edge updates. The program
// maintains a READS index incrementally (the paper's dynamic-graph
// baseline) while CrashSim — being index-free — simply recomputes on
// the current graph. After each batch of updates both answers are
// compared against the exact Power Method, illustrating the trade-off
// the paper's Section II-D discusses: the index answers instantly but
// drifts in accuracy; the index-free method pays per query but needs no
// maintenance.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"time"

	"crashsim"
)

const (
	numNodes = 120
	source   = crashsim.NodeID(0)
	batches  = 4
	perBatch = 12
)

func main() {
	profile, err := crashsim.Dataset("wiki-vote")
	if err != nil {
		log.Fatal(err)
	}
	g, err := crashsim.GenerateStatic(profile.Scaled(float64(numNodes)/float64(profile.Nodes)), 1.0, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting graph: n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	readsIx, err := crashsim.BuildREADS(g, 400, crashsim.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Mutable edge set for replaying updates onto fresh CrashSim graphs.
	edges := map[crashsim.Edge]bool{}
	for _, e := range g.Edges() {
		edges[e] = true
	}

	r := rand.New(rand.NewPCG(3, 5))
	for batch := 1; batch <= batches; batch++ {
		// Random update batch: half deletions, half insertions.
		applied := 0
		for applied < perBatch {
			x := crashsim.NodeID(r.IntN(g.NumNodes()))
			y := crashsim.NodeID(r.IntN(g.NumNodes()))
			if x == y {
				continue
			}
			e := crashsim.Edge{X: x, Y: y}
			add := !edges[e]
			if err := readsIx.ApplyEdge(e, add); err != nil {
				log.Fatal(err)
			}
			edges[e] = add
			if !add {
				delete(edges, e)
			}
			applied++
		}

		// Rebuild the current graph for CrashSim and the ground truth.
		b := crashsim.NewGraphBuilder(g.NumNodes(), true)
		for e := range edges {
			b.AddEdge(e.X, e.Y)
		}
		cur, err := b.Freeze()
		if err != nil {
			log.Fatal(err)
		}

		truth, err := crashsim.Exact(cur, 0.6)
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		crashScores, err := crashsim.SingleSource(cur, source, crashsim.Options{Iterations: 1500, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		crashTime := time.Since(start)

		start = time.Now()
		readsScores, err := readsIx.SingleSource(source)
		if err != nil {
			log.Fatal(err)
		}
		readsTime := time.Since(start)

		fmt.Printf("batch %d (+%d updates, m=%d):\n", batch, perBatch, cur.NumEdges())
		fmt.Printf("  crashsim  %8v  max-err %.4f\n", crashTime.Round(time.Microsecond), maxErr(truth, crashScores, source, cur.NumNodes()))
		fmt.Printf("  reads     %8v  max-err %.4f\n", readsTime.Round(time.Microsecond), maxErr(truth, readsScores, source, cur.NumNodes()))
	}
}

func maxErr(truth interface {
	Sim(u, v crashsim.NodeID) float64
}, scores crashsim.Scores, u crashsim.NodeID, n int) float64 {
	worst := 0.0
	for v := 0; v < n; v++ {
		d := math.Abs(scores[crashsim.NodeID(v)] - truth.Sim(u, crashsim.NodeID(v)))
		if d > worst {
			worst = d
		}
	}
	return worst
}
