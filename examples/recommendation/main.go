// Recommendation: the product-recommendation scenario of the paper's
// Example 1, end to end through the public API. A synthetic temporal
// user–item purchase graph is generated with drifting interests;
// RecommendForUser runs a temporal threshold query (CrashSim-T) to find
// the users whose similarity to the target stays above θ across the
// whole interval — users whose similarity is only momentarily high are
// excluded, exactly the motivation for temporal (rather than snapshot)
// SimRank — and ranks their purchases as recommendations.
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"

	"crashsim"
)

func main() {
	opt := crashsim.PurchaseGraphOptions{
		Users:            30,
		Items:            48,
		Groups:           4,
		PurchasesPerUser: 5,
		Snapshots:        6,
		DriftRate:        0.25,
		SwitchRate:       0.08,
		Seed:             21,
	}
	tg, groups, err := crashsim.GeneratePurchaseGraph(opt)
	if err != nil {
		log.Fatal(err)
	}
	const target = crashsim.NodeID(0)
	fmt.Printf("purchase graph: %d users, %d items, %d snapshots; target user %d is in taste group %d\n",
		opt.Users, opt.Items, tg.NumSnapshots(), target, groups[0][target])

	res, err := crashsim.RecommendForUser(tg, target, opt.Users, 0.02, 8,
		crashsim.Options{Iterations: 2000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	last := groups[len(groups)-1]
	fmt.Printf("\nusers stably similar to user %d over all %d snapshots:\n", target, tg.NumSnapshots())
	for _, u := range res.StableUsers {
		fmt.Printf("  user %-3d (taste group %d)\n", u, last[u])
	}

	fmt.Println("\nrecommended items (weight = summed similarity of owners):")
	for rank, rec := range res.Items {
		fmt.Printf("%2d. item %-3d weight %.3f\n", rank+1, int(rec.Item)-opt.Users, rec.Weight)
	}
	if len(res.Items) == 0 {
		fmt.Println("  (the stable group owns nothing the target lacks)")
	}
}
