// Clustering: SimRank-based graph clustering (one of the applications
// the paper's introduction motivates). The program generates a
// citation-style graph and clusters it with ClusterGraph: greedy seed
// expansion where each member scores at least θ against its cluster's
// seed, powered internally by CrashSim's *partial* computation mode —
// the candidate-set restriction that distinguishes CrashSim from other
// single-source algorithms.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"crashsim"
)

func main() {
	profile, err := crashsim.Dataset("hepth")
	if err != nil {
		log.Fatal(err)
	}
	g, err := crashsim.GenerateStatic(profile, 0.015, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering a %d-node, %d-edge citation-style graph\n",
		g.NumNodes(), g.NumEdges())

	const theta = 0.10
	res, err := crashsim.ClusterGraph(g, theta, crashsim.Options{Iterations: 800, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	sizes := map[int]int{}
	largest := 0
	for _, c := range res.Clusters {
		sizes[len(c.Members)]++
		if len(c.Members) > largest {
			largest = len(c.Members)
		}
	}
	fmt.Printf("formed %d clusters (θ=%.2f); largest has %d members\n",
		len(res.Clusters), theta, largest)
	fmt.Printf("shared-neighbor affinity of intra-cluster pairs: %.2f\n",
		crashsim.ClusterAffinity(g, res))
	fmt.Println("cluster size histogram:")
	for size := 1; size <= largest; size++ {
		if sizes[size] > 0 {
			fmt.Printf("  size %-3d × %d\n", size, sizes[size])
		}
	}
}
