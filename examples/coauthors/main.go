// Coauthors: a DBLP-style evolving co-authorship network. A temporal
// trend query finds "rising collaborators": authors whose SimRank with a
// target author increases monotonically as they publish their way into
// the target's community — the temporal pattern a per-snapshot SimRank
// cannot express.
//
//	go run ./examples/coauthors
package main

import (
	"fmt"
	"log"

	"crashsim"
)

const (
	communityA = 12 // authors 0..11: the target's community
	communityB = 12 // authors 12..23: a distant community
	newcomers  = 4  // authors 24..27: start in B, migrate toward A
	snapshots  = 5
	target     = crashsim.NodeID(0)
)

func main() {
	n := communityA + communityB + newcomers
	snaps := make([][]crashsim.Edge, snapshots)
	for t := range snaps {
		snaps[t] = coauthorEdges(t)
	}
	tg, err := crashsim.FromSnapshots(n, false, snaps)
	if err != nil {
		log.Fatal(err)
	}

	res, err := crashsim.QueryTemporal(tg, target,
		crashsim.TrendQuery(crashsim.Increasing, 0.02),
		crashsim.Options{Iterations: 4000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Low-similarity survivors are noise (their scores fluctuate within
	// the slack); the interesting risers sit near the top.
	fmt.Printf("top authors with monotonically rising similarity to author %d:\n", target)
	for _, v := range crashsim.TopSimilar(res.Final, target, 8) {
		kind := "community A"
		switch {
		case int(v) >= communityA+communityB:
			kind = "newcomer (migrating toward A)"
		case int(v) >= communityA:
			kind = "community B"
		}
		fmt.Printf("  author %-3d final-sim=%.4f  [%s]\n", v, res.Final[v], kind)
	}
	fmt.Printf("\npruning stats: evaluated=%d reused=%d\n",
		res.Stats.Evaluated, res.Stats.ReusedDelta+res.Stats.ReusedDiff)
}

// coauthorEdges builds snapshot t: two stable ring-shaped communities,
// with each newcomer accumulating one extra collaboration per snapshot
// with community A while keeping a shrinking tie to community B.
func coauthorEdges(t int) []crashsim.Edge {
	var edges []crashsim.Edge
	add := func(x, y int) {
		edges = append(edges, crashsim.Edge{X: crashsim.NodeID(x), Y: crashsim.NodeID(y)})
	}
	ring := func(start, size int) {
		for i := 0; i < size; i++ {
			add(start+i, start+(i+1)%size)
			add(start+i, start+(i+2)%size)
		}
	}
	ring(0, communityA)
	ring(communityA, communityB)
	for k := 0; k < newcomers; k++ {
		author := communityA + communityB + k
		// One persistent tie into community B.
		add(author, communityA+k)
		// t collaborations into community A, spread around the target's
		// neighborhood, so similarity to the target rises with t.
		for j := 0; j <= t && j < communityA-1; j++ {
			add(author, (k+j)%communityA)
		}
	}
	return dedupe(edges)
}

func dedupe(edges []crashsim.Edge) []crashsim.Edge {
	seen := map[crashsim.Edge]bool{}
	out := edges[:0]
	for _, e := range edges {
		c := e
		if c.X > c.Y {
			c.X, c.Y = c.Y, c.X
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
