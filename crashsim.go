// Package crashsim is a from-scratch Go implementation of the ICDE 2020
// paper "CrashSim: An Efficient Algorithm for Computing SimRank over
// Static and Temporal Graphs" (Li et al.), together with every baseline
// it evaluates against.
//
// The package exposes the public API; the algorithm implementations live
// in internal packages:
//
//   - SingleSource / Partial / MultiSource / TopK / SinglePair /
//     SingleSourceWithError: CrashSim, the paper's index-free
//     single-source SimRank estimator with an (ε, δ) guarantee.
//   - QueryTemporal / QueryTemporalInterval / DurableTopK /
//     RecommendForUser: CrashSim-T, temporal trend, threshold, band,
//     durable-top-k and recommendation queries with delta and
//     difference pruning.
//   - Exact / ExactPair: Jeh–Widom Power Method ground truth.
//   - BaselineProbeSim, BuildSLING, BuildREADS, NewLinearSolver: the
//     compared algorithm families.
//   - ClusterGraph: SimRank-based clustering.
//
// Graphs are built with NewGraphBuilder or loaded with LoadGraph;
// temporal graphs with NewTemporalGraph, FromSnapshots or LoadTemporal;
// synthetic workloads with Datasets / GenerateStatic / GenerateTemporal
// / GeneratePurchaseGraph. See examples/ for runnable end-to-end
// programs and DESIGN.md for the mapping from the paper's sections to
// the code.
package crashsim

import (
	"context"
	"fmt"
	"io"
	"time"

	"crashsim/internal/cache"
	"crashsim/internal/cluster"
	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/exact"
	"crashsim/internal/graph"
	"crashsim/internal/linsim"
	"crashsim/internal/probesim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// NodeID identifies a node; nodes are dense integers in [0, n).
type NodeID = graph.NodeID

// Edge is a directed arc (or an undirected pair for undirected graphs).
type Edge = graph.Edge

// Graph is an immutable snapshot graph.
type Graph = graph.Graph

// GraphBuilder accumulates edges for an immutable Graph.
type GraphBuilder = graph.Builder

// Scores maps nodes to SimRank estimates for one source.
type Scores = core.Scores

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// LoadGraph reads an edge list (see internal/graph's format: "x y" lines,
// '#' comments, optional "# crashsim:" header).
func LoadGraph(r io.Reader) (*Graph, error) {
	return graph.ReadEdgeList(r)
}

// SaveGraph writes g in the edge-list format LoadGraph reads.
func SaveGraph(w io.Writer, g *Graph) error {
	return graph.WriteEdgeList(w, g)
}

// Options configures the CrashSim estimator. The zero value uses the
// paper's experimental defaults: c = 0.6, ε = 0.025, δ = 0.01, with the
// truncation length and iteration count derived from Theorem 1.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the maximum tolerable absolute error. Default 0.025.
	Eps float64
	// Delta is the per-query failure probability. Default 0.01.
	Delta float64
	// Iterations overrides the theory-derived Monte-Carlo iteration
	// count n_r. The derived count is conservative; practical workloads
	// often use a few hundred to a few thousand iterations.
	Iterations int
	// Workers bounds estimator parallelism; results are identical for
	// any value. Default 1.
	Workers int
	// Seed makes results deterministic.
	Seed uint64
}

func (o Options) params() core.Params {
	return core.Params{
		C:          o.C,
		Eps:        o.Eps,
		Delta:      o.Delta,
		Iterations: o.Iterations,
		Workers:    o.Workers,
		Seed:       o.Seed,
	}
}

// SingleSource runs CrashSim: it returns SimRank estimates between u and
// every node of g, each within Eps of the true value with probability at
// least 1−Delta (Theorem 1 of the paper).
func SingleSource(g *Graph, u NodeID, opt Options) (Scores, error) {
	return core.SingleSource(g, u, nil, opt.params())
}

// Partial runs CrashSim restricted to the candidate set omega — the
// partial-computation mode that distinguishes CrashSim from other
// single-source algorithms and powers CrashSim-T.
func Partial(g *Graph, u NodeID, omega []NodeID, opt Options) (Scores, error) {
	return core.SingleSource(g, u, omega, opt.params())
}

// MultiSource answers a batch of single-source queries in one batched
// pipeline pass: each distinct source's reverse reachable tree is built
// once and all sources' walk kernels run through a single parallel
// fan-out (Workers bounds it). Results match per-source SingleSource
// calls bit-for-bit.
func MultiSource(g *Graph, sources []NodeID, opt Options) (map[NodeID]Scores, error) {
	res, err := core.MultiSource(context.Background(), g, sources, nil, opt.params())
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID]Scores, len(sources))
	for i, u := range sources {
		out[u] = res[i]
	}
	return out, nil
}

// RankedNode is one answer of a top-k query.
type RankedNode = core.TopKResult

// TopK returns the k nodes most similar to u (excluding u), using a
// coarse-then-refine schedule built on CrashSim's partial mode.
func TopK(g *Graph, u NodeID, k int, opt Options) ([]RankedNode, error) {
	return core.TopK(g, u, k, opt.params())
}

// SinglePair estimates sim(u, v) alone, without computing the full
// single-source result.
func SinglePair(g *Graph, u, v NodeID, opt Options) (float64, error) {
	return core.SinglePair(g, u, v, opt.params())
}

// Estimator is the unified query interface over every algorithm family
// in the repository: context-aware single-source SimRank against one
// fixed graph. Build one with NewEstimator; answer top-k and pair
// queries uniformly with EstimatorTopK and EstimatorPair.
type Estimator = engine.Estimator

// EstimatorNames lists the selectable backends, sorted: "crashsim",
// "exact", "probesim", "reads", "sling".
func EstimatorNames() []string { return engine.Names() }

// NewEstimator builds the named backend over g. Index-based backends
// (sling, reads, exact) pay their whole index construction here,
// honoring ctx; the returned Estimator then serves concurrent queries.
func NewEstimator(ctx context.Context, name string, g *Graph, opt Options) (Estimator, error) {
	return engine.New(ctx, name, g, engine.Config{
		C: opt.C, Eps: opt.Eps, Delta: opt.Delta,
		Iterations: opt.Iterations, Workers: opt.Workers, Seed: opt.Seed,
	})
}

// CacheOptions sizes the optional query-result cache of
// NewCachedEstimator.
type CacheOptions struct {
	// MaxBytes bounds the cache's accounted size. Required (> 0).
	MaxBytes int64
	// TTL bounds entry age; zero means entries live until evicted or
	// their graph version is superseded.
	TTL time.Duration
}

// NewCachedEstimator is NewEstimator plus a private query-result cache:
// repeated identical queries are served from memory and concurrent
// identical queries trigger one backend computation. Results are
// bit-identical to the uncached estimator's — estimates are
// deterministic for a fixed seed — and entries are keyed on the graph's
// Version, so serving a newly frozen snapshot of an evolving graph
// through a new estimator never reuses results from the old edge set.
func NewCachedEstimator(ctx context.Context, name string, g *Graph, opt Options, co CacheOptions) (Estimator, error) {
	cfg := engine.Config{
		C: opt.C, Eps: opt.Eps, Delta: opt.Delta,
		Iterations: opt.Iterations, Workers: opt.Workers, Seed: opt.Seed,
	}
	est, err := engine.New(ctx, name, g, cfg)
	if err != nil {
		return nil, err
	}
	qc, err := cache.New(cache.Config{MaxBytes: co.MaxBytes, TTL: co.TTL})
	if err != nil {
		return nil, err
	}
	return engine.Cached(est, engine.CacheConfig{
		Cache:   qc,
		Version: g.Version,
		Scope:   cfg.Fingerprint(),
	})
}

// EstimatorTopK answers a top-k query through any Estimator, natively
// where the backend supports one and by ranking a full single-source
// pass otherwise.
func EstimatorTopK(ctx context.Context, est Estimator, u NodeID, k int) ([]RankedNode, error) {
	return engine.TopK(ctx, est, u, k)
}

// EstimatorPair answers sim(u, v) through any Estimator.
func EstimatorPair(ctx context.Context, est Estimator, u, v NodeID) (float64, error) {
	return engine.Pair(ctx, est, u, v)
}

// EstimatorMultiSource answers a batch of single-source queries through
// any Estimator — natively batched where the backend supports it
// (crashsim builds each distinct source's tree once and fans all
// sources out together), sequentially otherwise. The result is parallel
// to sources and matches per-source EstimatorTopK-style dispatch
// bit-for-bit.
func EstimatorMultiSource(ctx context.Context, est Estimator, sources []NodeID) ([]Scores, error) {
	return engine.MultiSource(ctx, est, sources)
}

// Exact computes the all-pairs SimRank ground truth with the Power
// Method (55 iterations by default, as in the paper's experiments). It
// stores an n×n matrix: intended for validation on small graphs.
func Exact(g *Graph, c float64) (*exact.Result, error) {
	return exact.PowerMethod(g, exact.PowerOptions{C: c})
}

// ExactPair computes sim(u, v) exactly without the n×n matrix, by
// iterating the SimRank recurrence over the node pairs reachable from
// (u, v) — practical on sparse graphs where Exact would not fit.
func ExactPair(g *Graph, u, v NodeID, c float64) (float64, error) {
	return exact.SinglePair(g, u, v, exact.SinglePairOptions{C: c})
}

// BaselineProbeSim runs the ProbeSim baseline (index-free, first-meeting
// probes) with iteration count nr (0 derives the theoretical count).
func BaselineProbeSim(g *Graph, u NodeID, opt Options) (Scores, error) {
	s, err := probesim.SingleSource(g, u, probesim.Options{
		C: opt.C, Eps: opt.Eps, Delta: opt.Delta,
		Iterations: opt.Iterations, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return Scores(s), nil
}

// NodeEstimate is a SimRank score with its Monte-Carlo standard error.
type NodeEstimate = core.Estimate

// SingleSourceWithError is SingleSource with per-node uncertainty: the
// Score fields match SingleSource exactly, and an approximate 95%
// confidence interval is Score ± 2·StdErr.
func SingleSourceWithError(g *Graph, u NodeID, opt Options) (map[NodeID]NodeEstimate, error) {
	return core.SingleSourceWithError(g, u, nil, opt.params())
}

// LinearSolver is a deterministic single-source SimRank solver based on
// the linearized series S = Σ c^k W^k D (Wᵀ)^k (the related-work
// linearization family); build once, query many times with no sampling
// noise beyond the shared diagonal estimate.
type LinearSolver struct{ s *linsim.Solver }

// NewLinearSolver estimates the diagonal correction and returns a
// query-ready solver.
func NewLinearSolver(g *Graph, opt Options) (*LinearSolver, error) {
	s, err := linsim.New(g, linsim.Options{C: opt.C, Eps: opt.Eps, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	return &LinearSolver{s: s}, nil
}

// SingleSource returns sim(u, ·) as a dense slice of length n.
func (l *LinearSolver) SingleSource(u NodeID) ([]float64, error) {
	return l.s.SingleSource(u)
}

// Clustering is a SimRank-based clustering of a graph.
type Clustering = cluster.Result

// ClusterGraph groups nodes by greedy SimRank seed expansion: every
// member of a cluster scores at least theta against the cluster's seed
// (one of the applications the paper's introduction motivates).
func ClusterGraph(g *Graph, theta float64, opt Options) (*Clustering, error) {
	return cluster.Greedy(g, cluster.Options{Theta: theta, Params: opt.params()})
}

// ClusterCoverage returns the fraction of edges internal to clusters —
// a community-style quality measure. For similarity clusters on
// citation-like graphs prefer ClusterAffinity, which measures shared
// in-neighbors instead of direct adjacency.
func ClusterCoverage(g *Graph, r *Clustering) float64 {
	return cluster.Coverage(g, r)
}

// ClusterAffinity returns the fraction of intra-cluster node pairs that
// share at least one in-neighbor — the first-order source of SimRank
// similarity and the natural quality measure for ClusterGraph results.
func ClusterAffinity(g *Graph, r *Clustering) float64 {
	return cluster.SharedNeighborAffinity(g, r)
}

// SLINGIndex is a built SLING index; construction is expensive, queries
// are fast.
type SLINGIndex struct{ ix *sling.Index }

// BuildSLING constructs the SLING baseline index over g.
func BuildSLING(g *Graph, opt Options) (*SLINGIndex, error) {
	ix, err := sling.Build(g, sling.Options{C: opt.C, Eps: opt.Eps, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	return &SLINGIndex{ix: ix}, nil
}

// SingleSource queries the index.
func (s *SLINGIndex) SingleSource(u NodeID) (Scores, error) {
	m, err := s.ix.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return Scores(m), nil
}

// READSIndex is a built READS index over a mutable graph; it supports
// incremental edge updates.
type READSIndex struct{ ix *reads.Index }

// BuildREADS constructs the READS baseline index from g's current edges.
// R is the stored-walks-per-node parameter (0 means the paper's 100).
func BuildREADS(g *Graph, r int, opt Options) (*READSIndex, error) {
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			return nil, fmt.Errorf("crashsim: copying graph: %w", err)
		}
	}
	ix, err := reads.Build(d, reads.Options{C: opt.C, R: r, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	return &READSIndex{ix: ix}, nil
}

// SingleSource queries the index.
func (s *READSIndex) SingleSource(u NodeID) (Scores, error) {
	m, err := s.ix.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return Scores(m), nil
}

// ApplyEdge updates the index for one edge insertion (add=true) or
// deletion, regenerating only the affected stored walks.
func (s *READSIndex) ApplyEdge(e Edge, add bool) error {
	return s.ix.ApplyEdge(e, add)
}
