module crashsim

go 1.22
