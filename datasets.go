package crashsim

import (
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// DatasetProfile describes one of the paper's five evaluation datasets
// (Table III) as a synthetic stand-in generator.
type DatasetProfile = gen.Profile

// Datasets returns the five dataset profiles in the paper's order:
// as-733, as-caida, wiki-vote, hepth, hepph.
func Datasets() []DatasetProfile { return gen.Profiles() }

// Dataset looks a profile up by name.
func Dataset(name string) (DatasetProfile, error) { return gen.ProfileByName(name) }

// GenerateStatic generates the profile's base snapshot at the given
// scale (1.0 = the paper's published size).
func GenerateStatic(p DatasetProfile, scale float64, seed uint64) (*Graph, error) {
	return p.Scaled(scale).Static(seed)
}

// GenerateTemporal generates the profile's full temporal history at the
// given scale, optionally overriding the snapshot count (0 keeps the
// profile's).
func GenerateTemporal(p DatasetProfile, scale float64, snapshots int, seed uint64) (*TemporalGraph, error) {
	q := p.Scaled(scale)
	if snapshots > 0 {
		q = q.WithSnapshots(snapshots)
	}
	return q.Temporal(seed)
}

// PaperExampleGraph returns the 8-node running-example graph of the
// paper (Fig 2 as reconstructed from Example 2's constraints).
func PaperExampleGraph() *Graph { return graph.PaperExample() }

// PurchaseGraphOptions configures the synthetic temporal user–item
// purchase workload behind the paper's Example 1.
type PurchaseGraphOptions = gen.BipartiteOptions

// GeneratePurchaseGraph builds a temporal bipartite purchase graph with
// drifting interests; it also returns each user's taste group per
// snapshot (ground truth for similarity tests and demos).
func GeneratePurchaseGraph(opt PurchaseGraphOptions) (*TemporalGraph, [][]int, error) {
	return gen.Bipartite(opt)
}
