// Command crashsim answers SimRank queries from the command line.
//
// Static single-source query (edge-list file or generated profile):
//
//	crashsim -graph wiki.txt -source 3 -topk 10
//	crashsim -profile hepth -scale 0.05 -source 3 -algo probesim
//
// Single-pair, top-k and batched multi-source queries:
//
//	crashsim -graph wiki.txt -source 3 -pair 17
//	crashsim -graph wiki.txt -source 3 -algo topk -topk 10
//	crashsim -graph wiki.txt -batch 3,17,3 -topk 5
//
// Temporal queries over a temporal edge-list file:
//
//	crashsim -temporal as.tgraph -source 3 -query threshold -theta 0.05
//	crashsim -temporal as.tgraph -source 3 -query trend -direction increasing
//	crashsim -temporal as.tgraph -source 3 -query durable -topk 10
//
// Index persistence (sling, reads and prsim backends): -save-index builds the
// index, snapshots graph + index to a file (internal/store format) and
// answers the query; -load-index answers the query from a snapshot —
// graph included, so no -graph/-profile is needed — after verifying
// checksums and graph identity. -verify-index additionally rebuilds
// the index from the snapshot's own graph and insists on bit-identical
// single-source scores, exiting nonzero on any divergence (CI runs
// this across build/load process boundaries to catch format drift):
//
//	crashsim -profile hepth -scale 0.05 -algo sling -save-index hepth.snap -source 3
//	crashsim -algo sling -load-index hepth.snap -source 3
//	crashsim -algo sling -load-index hepth.snap -verify-index
//
// -mmap serves the snapshot zero-copy out of a read-only file mapping
// (format v2) instead of decoding a private heap copy; combined with
// -verify-index the mapped sections are checksummed and semantically
// validated eagerly, so the command doubles as an integrity check of
// the mapped path:
//
//	crashsim -algo sling -load-index hepth.snap -mmap -source 3
//	crashsim -algo sling -load-index hepth.snap -mmap -verify-index
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crashsim"
	"crashsim/internal/engine"
	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
	"crashsim/internal/store"
)

func main() {
	var (
		graphFile    = flag.String("graph", "", "static edge-list file")
		temporalFile = flag.String("temporal", "", "temporal edge-list file")
		profile      = flag.String("profile", "", "generate a dataset profile instead of reading a file")
		scale        = flag.Float64("scale", 0.05, "profile scale")
		statsOnly    = flag.Bool("stats", false, "print graph statistics and exit (static only)")
		source       = flag.Int("source", 0, "query source node")
		pairNode     = flag.Int("pair", -1, "second node for a single-pair query (static only)")
		batch        = flag.String("batch", "", "comma-separated sources for one batched multi-source query (static only)")
		algo         = flag.String("algo", "crashsim", "static algorithm: "+strings.Join(crashsim.EstimatorNames(), ", ")+", or topk")
		query        = flag.String("query", "threshold", "temporal query: threshold, trend, or durable")
		theta        = flag.Float64("theta", 0.05, "threshold θ")
		direction    = flag.String("direction", "increasing", "trend direction: increasing or decreasing")
		slack        = flag.Float64("slack", 0.025, "trend slack (noise tolerance)")
		topk         = flag.Int("topk", 10, "number of results to print")
		eps          = flag.Float64("eps", 0.025, "error bound ε")
		c            = flag.Float64("c", 0.6, "decay factor")
		iters        = flag.Int("iters", 2000, "Monte-Carlo iterations (0 = theory-derived)")
		seed         = flag.Uint64("seed", 42, "random seed")
		repeat       = flag.Int("repeat", 1, "run the static query this many times (with -cache-bytes, repeats hit the result cache)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "enable a query-result cache of this capacity for static queries (0 = off)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "result-cache entry lifetime (0 = no age bound)")
		saveIndex    = flag.String("save-index", "", "build the index (sling/reads/prsim) and write a graph+index snapshot to this file")
		loadIndex    = flag.String("load-index", "", "answer from a graph+index snapshot instead of building (no -graph/-profile needed)")
		verifyIndex  = flag.Bool("verify-index", false, "with -load-index: rebuild from the snapshot's graph and require bit-identical scores")
		useMmap      = flag.Bool("mmap", false, "with -load-index: serve zero-copy from a file mapping (v2 snapshots; eager verification when -verify-index is set)")
		hubFraction  = flag.Float64("hub-fraction", 0, "prsim: fraction of nodes (by in-degree rank) indexed eagerly (0 = default 0.05)")
	)
	flag.Parse()

	opt := crashsim.Options{C: *c, Eps: *eps, Iterations: *iters, Seed: *seed}
	cc := cacheConfig{bytes: *cacheBytes, ttl: *cacheTTL, repeat: *repeat}
	var err error
	switch {
	case *saveIndex != "" || *loadIndex != "":
		err = runIndexed(*graphFile, *profile, *scale, *source, *algo, *topk,
			*saveIndex, *loadIndex, *verifyIndex, *useMmap, *hubFraction, opt)
	case *statsOnly:
		err = runStats(*graphFile, *profile, *scale, opt.Seed)
	case *temporalFile != "":
		err = runTemporal(*temporalFile, *source, *query, *theta, *direction, *slack, *topk, opt)
	case *pairNode >= 0:
		err = runPair(*graphFile, *profile, *scale, *source, *pairNode, opt)
	case *batch != "":
		err = runBatch(*graphFile, *profile, *scale, *batch, *algo, *topk, opt)
	default:
		err = runStatic(*graphFile, *profile, *scale, *source, *algo, *topk, cc, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
		os.Exit(1)
	}
}

func loadStatic(graphFile, profile string, scale float64, seed uint64) (*crashsim.Graph, error) {
	switch {
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return crashsim.LoadGraph(f)
	case profile != "":
		p, err := crashsim.Dataset(profile)
		if err != nil {
			return nil, err
		}
		return crashsim.GenerateStatic(p, scale, seed)
	default:
		return nil, fmt.Errorf("need -graph, -profile or -temporal")
	}
}

// cacheConfig carries the CLI's result-cache settings: with a
// non-zero byte budget, repeated runs of the same query (-repeat) are
// served from the cache after the first, demonstrating the serving
// layer's amortization from the command line.
type cacheConfig struct {
	bytes  int64
	ttl    time.Duration
	repeat int
}

func runStatic(graphFile, profile string, scale float64, source int, algo string, topk int, cc cacheConfig, opt crashsim.Options) error {
	g, err := loadStatic(graphFile, profile, scale, opt.Seed)
	if err != nil {
		return err
	}
	u := crashsim.NodeID(source)
	ctx := context.Background()
	fmt.Printf("graph: n=%d m=%d directed=%t\n", g.NumNodes(), g.NumEdges(), g.Directed())

	// "-algo topk" is the top-k query on the default backend; every other
	// value dispatches through the engine registry uniformly.
	backend := algo
	if algo == "topk" {
		backend = "crashsim"
	}
	buildStart := time.Now()
	var est crashsim.Estimator
	if cc.bytes > 0 {
		est, err = crashsim.NewCachedEstimator(ctx, backend, g, opt,
			crashsim.CacheOptions{MaxBytes: cc.bytes, TTL: cc.ttl})
	} else {
		est, err = crashsim.NewEstimator(ctx, backend, g, opt)
	}
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)
	if cc.repeat < 1 {
		cc.repeat = 1
	}

	for run := 0; run < cc.repeat; run++ {
		label := algo
		if cc.repeat > 1 {
			label = fmt.Sprintf("%s run %d/%d", algo, run+1, cc.repeat)
		}
		start := time.Now()
		if algo == "topk" {
			ranked, err := crashsim.EstimatorTopK(ctx, est, u, topk)
			if err != nil {
				return err
			}
			fmt.Printf("top-%d from node %d in %v (setup %v)\n",
				topk, source, time.Since(start).Round(time.Microsecond), buildTime.Round(time.Microsecond))
			if run < cc.repeat-1 {
				continue // print the ranking once, after the last run
			}
			for rank, r := range ranked {
				fmt.Printf("%3d. node %-8d sim=%.5f\n", rank+1, r.Node, r.Score)
			}
			continue
		}
		scores, err := est.SingleSource(ctx, u, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%s single-source from node %d in %v (setup %v)\n",
			label, source, time.Since(start).Round(time.Microsecond), buildTime.Round(time.Microsecond))
		if run < cc.repeat-1 {
			continue
		}
		for rank, v := range crashsim.TopSimilar(scores, u, topk) {
			fmt.Printf("%3d. node %-8d sim=%.5f\n", rank+1, v, scores[v])
		}
	}
	return nil
}

// runIndexed is the index-persistence path for the sling and reads
// backends: build + snapshot (-save-index), or answer from a snapshot
// (-load-index), optionally proving the loaded index bit-identical to
// a rebuild (-verify-index). When loading, the index parameters come
// from the snapshot itself — the graph travels inside it, so the
// command is self-contained.
func runIndexed(graphFile, profile string, scale float64, source int, algo string, topk int,
	save, load string, verify, useMmap bool, hubFraction float64, opt crashsim.Options) error {
	if algo != "sling" && algo != "reads" && algo != "prsim" {
		return fmt.Errorf("-save-index/-load-index need an index-based backend (sling, reads or prsim), got %q", algo)
	}
	if load != "" && save != "" {
		return fmt.Errorf("-save-index and -load-index are mutually exclusive")
	}
	if verify && load == "" {
		return fmt.Errorf("-verify-index needs -load-index")
	}
	if useMmap && load == "" {
		return fmt.Errorf("-mmap needs -load-index")
	}
	ctx := context.Background()
	ecfg := engine.Config{
		C: opt.C, Eps: opt.Eps, Delta: opt.Delta,
		Iterations: opt.Iterations, Workers: opt.Workers, Seed: opt.Seed,
		HubFraction: hubFraction,
	}

	var g *crashsim.Graph
	if load != "" {
		start := time.Now()
		if useMmap {
			policy := store.VerifyOnLoadSection
			if verify {
				policy = store.VerifyEager
			}
			mp, err := store.OpenMapped(load, store.MapOptions{Verify: policy})
			if err != nil {
				return err
			}
			g = mp.Graph()
			fmt.Printf("snapshot %s: graph n=%d m=%d version=%#x (mapped %d bytes in %v, crc %s)\n",
				load, g.NumNodes(), g.NumEdges(), g.Version(), mp.MappedBytes(),
				time.Since(start).Round(time.Microsecond), policy)
			importStart := time.Now()
			switch algo {
			case "sling":
				ix, err := mp.ImportSling(g)
				if err != nil {
					return err
				}
				fillSling(&ecfg, ix)
			case "reads":
				ix, err := mp.ImportReads(g)
				if err != nil {
					return err
				}
				fillReads(&ecfg, ix)
			case "prsim":
				ix, err := mp.ImportPRSim(g)
				if err != nil {
					return err
				}
				fillPRSim(&ecfg, ix)
			}
			fmt.Printf("imported %s index in %v\n", algo, time.Since(importStart).Round(time.Microsecond))
		} else {
			snap, err := store.Load(load)
			if err != nil {
				return err
			}
			g = snap.Graph
			fmt.Printf("snapshot %s: graph n=%d m=%d version=%#x (loaded in %v)\n",
				load, g.NumNodes(), g.NumEdges(), g.Version(), time.Since(start).Round(time.Microsecond))
			importStart := time.Now()
			switch algo {
			case "sling":
				ix, err := snap.ImportSling(g)
				if err != nil {
					return err
				}
				fillSling(&ecfg, ix)
			case "reads":
				ix, err := snap.ImportReads(g)
				if err != nil {
					return err
				}
				fillReads(&ecfg, ix)
			case "prsim":
				ix, err := snap.ImportPRSim(g)
				if err != nil {
					return err
				}
				fillPRSim(&ecfg, ix)
			}
			fmt.Printf("imported %s index in %v\n", algo, time.Since(importStart).Round(time.Microsecond))
		}
		if err := verifyLoaded(ctx, verify, algo, g, ecfg); err != nil {
			return err
		}
	} else {
		var err error
		if g, err = loadStatic(graphFile, profile, scale, opt.Seed); err != nil {
			return err
		}
		fmt.Printf("graph: n=%d m=%d directed=%t version=%#x\n", g.NumNodes(), g.NumEdges(), g.Directed(), g.Version())
		snap := &store.Snapshot{
			Graph: g,
			Meta:  store.Meta{Dataset: datasetSpec(graphFile, profile, scale, opt.Seed), Tool: "crashsim", CreatedUnix: time.Now().Unix()},
		}
		buildStart := time.Now()
		switch algo {
		case "sling":
			ix, err := engine.BuildSlingIndex(ctx, g, ecfg)
			if err != nil {
				return err
			}
			ecfg.SlingIndex = ix
			p := ix.Export()
			snap.Sling = &p
		case "reads":
			ix, err := engine.BuildReadsIndex(ctx, g, ecfg)
			if err != nil {
				return err
			}
			ecfg.ReadsIndex = ix
			p := ix.Export()
			snap.Reads = &p
		case "prsim":
			ix, err := engine.BuildPRSimIndex(ctx, g, ecfg)
			if err != nil {
				return err
			}
			ecfg.PRSimIndex = ix
			p := ix.Export()
			snap.PRSim = &p
		}
		fmt.Printf("built %s index in %v\n", algo, time.Since(buildStart).Round(time.Microsecond))
		if err := store.Write(save, snap); err != nil {
			return err
		}
		fmt.Printf("wrote snapshot %s\n", save)
	}

	est, err := engine.New(ctx, algo, g, ecfg)
	if err != nil {
		return err
	}
	u := crashsim.NodeID(source)
	start := time.Now()
	scores, err := est.SingleSource(ctx, u, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%s single-source from node %d in %v\n", algo, source, time.Since(start).Round(time.Microsecond))
	for rank, v := range crashsim.TopSimilar(scores, u, topk) {
		fmt.Printf("%3d. node %-8d sim=%.5f\n", rank+1, v, scores[v])
	}
	return nil
}

// fillSling/fillReads/fillPRSim adopt a loaded index into the engine
// config together with the parameters recorded in its snapshot, so a
// -load-index run answers with the snapshot's own settings.
func fillSling(ecfg *engine.Config, ix *sling.Index) {
	ecfg.SlingIndex = ix
	o := ix.Options()
	ecfg.C, ecfg.Eps, ecfg.Seed = o.C, o.Eps, o.Seed
	ecfg.SlingDSamples = o.DSamples
}

func fillReads(ecfg *engine.Config, ix *reads.Index) {
	ecfg.ReadsIndex = ix
	o := ix.Options()
	ecfg.C, ecfg.Seed = o.C, o.Seed
	ecfg.ReadsR, ecfg.ReadsRQ = o.R, o.RQ
}

func fillPRSim(ecfg *engine.Config, ix *prsim.Index) {
	ecfg.PRSimIndex = ix
	o := ix.Options()
	ecfg.C, ecfg.Eps, ecfg.Delta, ecfg.Seed = o.C, o.Eps, o.Delta, o.Seed
	ecfg.Iterations, ecfg.HubFraction, ecfg.PRSimDSamples = o.Iterations, o.HubFraction, o.DSamples
}

// verifyLoaded rebuilds the index from the snapshot's own graph with
// the snapshot's recorded parameters and insists every node's
// single-source scores are bit-identical to the loaded index's — the
// cross-process equivalence check CI runs against a snapshot built in
// a separate step.
func verifyLoaded(ctx context.Context, verify bool, algo string, g *crashsim.Graph, ecfg engine.Config) error {
	if !verify {
		return nil
	}
	start := time.Now()
	loaded, err := engine.New(ctx, algo, g, ecfg)
	if err != nil {
		return err
	}
	rcfg := ecfg
	rcfg.SlingIndex, rcfg.ReadsIndex, rcfg.PRSimIndex = nil, nil, nil
	rebuilt, err := engine.New(ctx, algo, g, rcfg)
	if err != nil {
		return fmt.Errorf("verify: rebuilding: %w", err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		want, err := rebuilt.SingleSource(ctx, crashsim.NodeID(u), nil)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		have, err := loaded.SingleSource(ctx, crashsim.NodeID(u), nil)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if len(want) != len(have) {
			return fmt.Errorf("verify FAILED: source %d: %d scores rebuilt vs %d loaded", u, len(want), len(have))
		}
		for v, s := range want {
			if hs, ok := have[v]; !ok || hs != s {
				return fmt.Errorf("verify FAILED: source %d node %d: rebuilt %v, loaded %v", u, v, s, hs)
			}
		}
	}
	fmt.Printf("verify: loaded %s index bit-identical to rebuild across %d sources (%v)\n",
		algo, g.NumNodes(), time.Since(start).Round(time.Millisecond))
	return nil
}

// datasetSpec names the dataset for snapshot metadata.
func datasetSpec(graphFile, profile string, scale float64, seed uint64) string {
	if graphFile != "" {
		return graphFile
	}
	return fmt.Sprintf("%s@%g/%d", profile, scale, seed)
}

// runBatch answers one batched multi-source query: every listed source
// (duplicates kept, as a request batcher would send them) goes through
// the engine's MultiSource entry point — the batched pipeline on
// backends with a native batch mode, a sequential loop elsewhere — and
// prints each source's top-k.
func runBatch(graphFile, profile string, scale float64, batch, algo string, topk int, opt crashsim.Options) error {
	g, err := loadStatic(graphFile, profile, scale, opt.Seed)
	if err != nil {
		return err
	}
	var sources []crashsim.NodeID
	for _, field := range strings.Split(batch, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &v); err != nil {
			return fmt.Errorf("bad -batch entry %q: %w", field, err)
		}
		sources = append(sources, crashsim.NodeID(v))
	}
	ctx := context.Background()
	fmt.Printf("graph: n=%d m=%d directed=%t\n", g.NumNodes(), g.NumEdges(), g.Directed())
	est, err := crashsim.NewEstimator(ctx, algo, g, opt)
	if err != nil {
		return err
	}
	start := time.Now()
	results, err := crashsim.EstimatorMultiSource(ctx, est, sources)
	if err != nil {
		return err
	}
	fmt.Printf("%s batch of %d sources in %v\n", algo, len(sources), time.Since(start).Round(time.Microsecond))
	for i, u := range sources {
		fmt.Printf("source %d:\n", u)
		for rank, v := range crashsim.TopSimilar(results[i], u, topk) {
			fmt.Printf("%3d. node %-8d sim=%.5f\n", rank+1, v, results[i][v])
		}
	}
	return nil
}

func runStats(graphFile, profile string, scale float64, seed uint64) error {
	g, err := loadStatic(graphFile, profile, scale, seed)
	if err != nil {
		return err
	}
	s := graph.ComputeStats(g)
	_, components := graph.Components(g)
	giant := len(graph.GiantComponent(g))
	fmt.Printf("nodes:            %d\n", s.Nodes)
	fmt.Printf("edges:            %d\n", s.Edges)
	fmt.Printf("directed:         %t\n", s.Directed)
	fmt.Printf("mean in-degree:   %.2f\n", s.MeanInDeg)
	fmt.Printf("median in-degree: %d\n", s.MedianInDeg)
	fmt.Printf("max in-degree:    %d\n", s.MaxInDeg)
	fmt.Printf("max out-degree:   %d\n", s.MaxOutDeg)
	fmt.Printf("dangling (in):    %d\n", s.DanglingIn)
	fmt.Printf("dangling (out):   %d\n", s.DanglingOut)
	fmt.Printf("components:       %d (giant covers %d nodes)\n", components, giant)
	return nil
}

func runPair(graphFile, profile string, scale float64, source, pair int, opt crashsim.Options) error {
	g, err := loadStatic(graphFile, profile, scale, opt.Seed)
	if err != nil {
		return err
	}
	start := time.Now()
	s, err := crashsim.SinglePair(g, crashsim.NodeID(source), crashsim.NodeID(pair), opt)
	if err != nil {
		return err
	}
	fmt.Printf("sim(%d,%d) = %.5f  (%v)\n", source, pair, s, time.Since(start).Round(time.Microsecond))
	return nil
}

func runTemporal(file string, source int, query string, theta float64, direction string, slack float64, topk int, opt crashsim.Options) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	tg, err := crashsim.LoadTemporal(f)
	if err != nil {
		return err
	}

	if query == "durable" {
		start := time.Now()
		ranked, err := crashsim.DurableTopK(tg, crashsim.NodeID(source), topk, opt)
		if err != nil {
			return err
		}
		fmt.Printf("temporal graph: n=%d snapshots=%d\n", tg.NumNodes(), tg.NumSnapshots())
		fmt.Printf("durable top-%d from node %d in %v\n", topk, source, time.Since(start).Round(time.Millisecond))
		for rank, r := range ranked {
			fmt.Printf("%3d. node %-8d min-sim=%.5f\n", rank+1, r.Node, r.MinScore)
		}
		return nil
	}

	var q crashsim.TemporalQuery
	switch query {
	case "threshold":
		q = crashsim.ThresholdQuery(theta)
	case "trend":
		dir := crashsim.Increasing
		if direction == "decreasing" {
			dir = crashsim.Decreasing
		} else if direction != "increasing" {
			return fmt.Errorf("unknown trend direction %q", direction)
		}
		q = crashsim.TrendQuery(dir, slack)
	default:
		return fmt.Errorf("unknown query %q (want threshold, trend, or durable)", query)
	}

	start := time.Now()
	res, err := crashsim.QueryTemporal(tg, crashsim.NodeID(source), q, opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("temporal graph: n=%d snapshots=%d\n", tg.NumNodes(), tg.NumSnapshots())
	fmt.Printf("%s query from node %d in %v\n", q.Name(), source, elapsed.Round(time.Millisecond))
	fmt.Printf("pruning: evaluated=%d reused-delta=%d reused-diff=%d stable-tree-steps=%d\n",
		res.Stats.Evaluated, res.Stats.ReusedDelta, res.Stats.ReusedDiff, res.Stats.TreeStableSteps)
	fmt.Printf("result set (%d nodes):\n", len(res.Omega))
	for _, v := range res.Omega {
		fmt.Printf("  node %-8d final-sim=%.5f\n", v, res.Final[v])
	}
	return nil
}
