// Command gendata emits synthetic dataset files in the formats the rest
// of the tooling reads: static edge lists and temporal edge lists.
//
// Dataset profiles (Table III stand-ins):
//
//	gendata -profile wiki-vote -scale 0.1 -o wiki.txt
//	gendata -profile as-733 -scale 0.05 -temporal -snapshots 100 -o as.tgraph
//
// Raw random-graph models:
//
//	gendata -model er -nodes 1000 -edges 5000 -o er.txt
//	gendata -model ba -nodes 1000 -k 4 -directed=false -o ba.txt
//	gendata -model chunglu -nodes 1000 -edges 8000 -exponent 2.1 -o cl.txt
//	gendata -model smallworld -nodes 1000 -k 3 -beta 0.1 -o sw.txt
//
// With -save-index, gendata additionally builds a SimRank index over
// the generated static graph and writes a graph+index snapshot
// (internal/store format) that simserver -index-dir and
// crashsim -load-index consume:
//
//	gendata -profile hepth -scale 0.05 -save-index hepth.snap -index-algo sling
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"crashsim"
	"crashsim/internal/engine"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/store"
	"crashsim/internal/temporal"
)

func main() {
	var (
		profile   = flag.String("profile", "", "dataset profile: as-733, as-caida, wiki-vote, hepth, hepph")
		model     = flag.String("model", "", "raw model: er, ba, chunglu, smallworld (alternative to -profile)")
		nodes     = flag.Int("nodes", 1000, "node count (raw models)")
		edges     = flag.Int("edges", 5000, "edge count (er, chunglu)")
		k         = flag.Int("k", 4, "attachment/neighbor parameter (ba, smallworld)")
		beta      = flag.Float64("beta", 0.1, "rewiring probability (smallworld)")
		exponent  = flag.Float64("exponent", 2.1, "power-law exponent (chunglu)")
		directed  = flag.Bool("directed", true, "direction (raw models; smallworld is always undirected)")
		scale     = flag.Float64("scale", 0.05, "profile scale (1.0 = paper-published size)")
		temporalF = flag.Bool("temporal", false, "emit a temporal history instead of one static snapshot")
		snapshots = flag.Int("snapshots", 0, "snapshot count (profile: override; raw model: enables churn)")
		churn     = flag.Float64("churn", 0.01, "per-transition edge churn rate (raw temporal models)")
		active    = flag.Float64("active", 1.0, "fraction of transitions carrying churn")
		seed      = flag.Uint64("seed", 42, "generator seed")
		out       = flag.String("o", "", "output file (default stdout)")
		saveIndex = flag.String("save-index", "",
			"also build an index over the generated static graph and write a graph+index snapshot here")
		indexAlgo = flag.String("index-algo", "sling", "index family for -save-index: sling, reads or prsim")
	)
	flag.Parse()
	if *saveIndex != "" && *temporalF {
		fatal(fmt.Errorf("-save-index applies to static output only"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch {
	case *profile != "" && *model != "":
		err = fmt.Errorf("-profile and -model are mutually exclusive")
	case *model != "":
		err = runModel(w, *model, *nodes, *edges, *k, *beta, *exponent, *directed,
			*temporalF, *snapshots, *churn, *active, *seed, *saveIndex, *indexAlgo)
	case *profile != "":
		err = runProfile(w, *profile, *scale, *temporalF, *snapshots, *seed, *saveIndex, *indexAlgo)
	default:
		err = fmt.Errorf("need -profile or -model")
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
	os.Exit(1)
}

func runProfile(w io.Writer, profile string, scale float64, temporalOut bool, snapshots int, seed uint64, snapPath, indexAlgo string) error {
	p, err := crashsim.Dataset(profile)
	if err != nil {
		return err
	}
	if temporalOut {
		tg, err := crashsim.GenerateTemporal(p, scale, snapshots, seed)
		if err != nil {
			return err
		}
		return crashsim.SaveTemporal(w, tg)
	}
	g, err := crashsim.GenerateStatic(p, scale, seed)
	if err != nil {
		return err
	}
	if err := crashsim.SaveGraph(w, g); err != nil {
		return err
	}
	return saveSnapshot(g, snapPath, indexAlgo, fmt.Sprintf("%s@%g/%d", profile, scale, seed), seed)
}

// saveSnapshot builds the requested index over g with the engine's
// default parameters (and the generator seed) and writes a graph+index
// snapshot — the artifact simserver -index-dir and crashsim -load-index
// consume. A consumer wanting different index parameters rebuilds; the
// snapshot records the ones used.
func saveSnapshot(g *graph.Graph, path, algo, spec string, seed uint64) error {
	if path == "" {
		return nil
	}
	ecfg := engine.Config{Seed: seed}
	snap := &store.Snapshot{
		Graph: g,
		Meta:  store.Meta{Dataset: spec, Tool: "gendata", CreatedUnix: time.Now().Unix()},
	}
	start := time.Now()
	switch algo {
	case "sling":
		ix, err := engine.BuildSlingIndex(context.Background(), g, ecfg)
		if err != nil {
			return err
		}
		p := ix.Export()
		snap.Sling = &p
	case "reads":
		ix, err := engine.BuildReadsIndex(context.Background(), g, ecfg)
		if err != nil {
			return err
		}
		p := ix.Export()
		snap.Reads = &p
	case "prsim":
		ix, err := engine.BuildPRSimIndex(context.Background(), g, ecfg)
		if err != nil {
			return err
		}
		p := ix.Export()
		snap.PRSim = &p
	default:
		return fmt.Errorf("unknown -index-algo %q (want sling, reads or prsim)", algo)
	}
	fmt.Fprintf(os.Stderr, "gendata: built %s index in %v\n", algo, time.Since(start).Round(time.Millisecond))
	if err := store.Write(path, snap); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gendata: wrote snapshot %s\n", path)
	return nil
}

func runModel(w io.Writer, model string, nodes, edges, k int, beta, exponent float64,
	directed, temporalOut bool, snapshots int, churn, active float64, seed uint64,
	snapPath, indexAlgo string) error {
	var (
		es  []graph.Edge
		err error
	)
	switch model {
	case "er":
		es, err = gen.ErdosRenyi(nodes, edges, directed, seed)
	case "ba":
		es, err = gen.PreferentialAttachment(nodes, k, directed, seed)
	case "chunglu":
		es, err = gen.ChungLu(nodes, edges, exponent, directed, seed)
	case "smallworld":
		directed = false
		es, err = gen.SmallWorld(nodes, k, beta, seed)
	default:
		return fmt.Errorf("unknown model %q (want er, ba, chunglu, smallworld)", model)
	}
	if err != nil {
		return err
	}
	if temporalOut {
		if snapshots < 1 {
			return fmt.Errorf("temporal output needs -snapshots >= 1")
		}
		tg, err := gen.Churn(nodes, directed, es, gen.ChurnOptions{
			Snapshots:      snapshots,
			AddRate:        churn,
			DelRate:        churn,
			ActiveFraction: active,
			Seed:           seed + 1,
		})
		if err != nil {
			return err
		}
		return temporal.Write(w, tg)
	}
	g, err := gen.BuildStatic(nodes, directed, es)
	if err != nil {
		return err
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		return err
	}
	return saveSnapshot(g, snapPath, indexAlgo, fmt.Sprintf("%s/n%d/%d", model, nodes, seed), seed)
}
