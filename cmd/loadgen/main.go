// Command loadgen drives a running simserver with open-loop load and
// reports SLO percentiles. Unlike a closed-loop benchmark it keeps
// offering the target rate when the server slows down, and it charges
// every request's latency from its *scheduled* send time, so queueing
// delay under overload appears in the percentiles instead of being
// coordinated-omission'd away (see internal/load).
//
// The source pool is fetched from the server's /stats endpoint (all
// node ids, popularity-ordered by id) unless -pool-size caps it;
// sources are then drawn rank-Zipf. Typical use:
//
//	simserver -addr :8080 &
//	loadgen -url http://127.0.0.1:8080 -qps 200 -duration 30s
//	loadgen -url http://127.0.0.1:8080 -qps 500 -arrivals fixed \
//	  -mix-single 0.5 -mix-topk 0.4 -mix-batch 0.1 -json result.json
//
// Exit status is 0 when every response was 2xx or 429; any other
// response (or transport failure) exits 1 after printing samples.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"crashsim/internal/graph"
	"crashsim/internal/load"
)

func main() {
	url := flag.String("url", "", "base URL of the simserver under test (required)")
	qps := flag.Float64("qps", 100, "open-loop target arrival rate")
	duration := flag.Duration("duration", 10*time.Second, "arrival-scheduling window")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson or fixed")
	mixSingle := flag.Float64("mix-single", 0.70, "relative weight of GET /singlesource")
	mixTopK := flag.Float64("mix-topk", 0.15, "relative weight of GET /topk")
	mixBatch := flag.Float64("mix-batch", 0.15, "relative weight of POST /batch/singlesource")
	mixWrite := flag.Float64("mix-write", 0, "relative weight of POST /edges mutations (needs a server with live ingest)")
	k := flag.Int("k", 10, "result length per query")
	batchSize := flag.Int("batch-size", 16, "sources per batch request")
	zipfS := flag.Float64("zipf-s", 1.1, "rank-Zipf skew of source popularity (0 = uniform)")
	poolSize := flag.Int("pool-size", 0, "cap the source pool to the first N node ids (0 = all nodes)")
	seed := flag.Uint64("seed", 1, "schedule seed: same seed, same request stream")
	maxInFlight := flag.Int("max-inflight", 0, "client-side concurrent-request cap (default 4096)")
	jsonOut := flag.String("json", "", "write the machine-readable result to this file (\"-\" = stdout)")
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url required")
		flag.Usage()
		os.Exit(2)
	}
	if *arrivals != "poisson" && *arrivals != "fixed" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown -arrivals %q (want poisson or fixed)\n", *arrivals)
		os.Exit(2)
	}

	pool, err := fetchPool(*url, *poolSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	res, err := load.Run(context.Background(), load.Config{
		BaseURL:     *url,
		QPS:         *qps,
		Duration:    *duration,
		Poisson:     *arrivals == "poisson",
		Mix:         load.Mix{Single: *mixSingle, TopK: *mixTopK, Batch: *mixBatch, Write: *mixWrite},
		K:           *k,
		BatchSize:   *batchSize,
		Pool:        pool,
		ZipfS:       *zipfS,
		Seed:        *seed,
		MaxInFlight: *maxInFlight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	ms := func(s float64) string { return fmt.Sprintf("%.1fms", s*1e3) }
	fmt.Printf("offered %d at %.4g qps (%s arrivals, %v): achieved %.1f qps\n",
		res.Offered, res.TargetQPS, *arrivals, *duration, res.AchievedQPS)
	fmt.Printf("  ok %d  shed %d (%.1f%%)  errors %d  by-kind %v\n",
		res.OK, res.Shed, res.ShedRate*100, res.Errors, res.ByKind)
	fmt.Printf("  latency (from scheduled send): p50 %s  p90 %s  p99 %s  p999 %s  max %s\n",
		ms(res.Latency.P50), ms(res.Latency.P90), ms(res.Latency.P99), ms(res.Latency.P999), ms(res.Latency.Max))
	fmt.Printf("  service (from actual send):    p50 %s  p90 %s  p99 %s  p999 %s  max %s\n",
		ms(res.Service.P50), ms(res.Service.P90), ms(res.Service.P99), ms(res.Service.P999), ms(res.Service.Max))

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if res.Errors > 0 {
		for _, s := range res.ErrorSamples {
			fmt.Fprintf(os.Stderr, "loadgen: error sample: %s\n", s)
		}
		os.Exit(1)
	}
}

// fetchPool asks the server's /stats for its node count and returns
// the id-ordered source pool, optionally capped. Node ids double as
// popularity ranks for the Zipf draw; generated profiles allot low ids
// to early (hub-heavy) nodes, and -pool-size narrows traffic to a hot
// working set.
func fetchPool(baseURL string, capSize int) ([]graph.NodeID, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	var stats struct {
		Nodes int `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("GET /stats: %w", err)
	}
	if stats.Nodes <= 0 {
		return nil, fmt.Errorf("GET /stats: server reports %d nodes", stats.Nodes)
	}
	n := stats.Nodes
	if capSize > 0 && capSize < n {
		n = capSize
	}
	pool := make([]graph.NodeID, n)
	for i := range pool {
		pool[i] = graph.NodeID(i)
	}
	return pool, nil
}
