// Command repro regenerates the paper's tables and figures using the
// synthetic dataset stand-ins.
//
// Usage:
//
//	repro [flags] [experiment ...]
//
// Experiments: table2, table3, example2, fig5, fig6, fig7, ablation,
// extra, scaling, memory, kernel, throughput, store, prsim, serving,
// check, all (default: all). Flags tune scale and budgets; the defaults
// finish in a few minutes. EXPERIMENTS.md records committed results
// with the exact flags used.
//
// -kernel-json names the machine-readable comparison file
// (BENCH_crashsim.json): the kernel experiment writes the static,
// temporal and batch sections, the store and prsim experiments merge
// their sections into the same file, and each writer preserves the
// sections it does not own.
//
// "serving" runs the open-loop SLO ladder (bench.Serving) against an
// in-process server and writes BENCH_serving.json (-serving-json). It
// exits non-zero if any response is neither 2xx nor 429, after writing
// the ladder so the evidence survives the failure.
//
// "check" is the perf-regression gate: it compares the geomean-speedup
// sections of a freshly generated comparison file (-check-fresh,
// e.g. the CI smoke run's output) against the committed baseline
// (-check-baseline, BENCH_crashsim.json) and exits non-zero when any
// shared section falls below 1 - tolerance of its baseline ratio.
// Neither is part of "all": serving is a load test, check needs a
// fresh file to grade.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crashsim/internal/bench"
)

func main() {
	cfg := bench.Config{}
	flag.Float64Var(&cfg.Scale, "scale", 0, "static dataset scale (default 0.05)")
	flag.Float64Var(&cfg.TemporalScale, "temporal-scale", 0, "temporal dataset scale for fig6 (default 0.02)")
	flag.Float64Var(&cfg.Fig7Scale, "fig7-scale", 0, "as-733 scale for fig7 (default 0.03)")
	flag.IntVar(&cfg.Sources, "sources", 0, "random query sources per dataset (default 5; paper uses 100)")
	flag.IntVar(&cfg.Snapshots, "snapshots", 0, "history length for fig6 (default 8)")
	flag.Float64Var(&cfg.Eps, "eps", 0, "error bound for non-swept algorithms (default 0.025)")
	flag.Float64Var(&cfg.C, "c", 0, "SimRank decay factor (default 0.6)")
	flag.Float64Var(&cfg.IterScale, "iter-scale", 0, "multiplier on theory-derived iteration counts (default 0.02)")
	flag.IntVar(&cfg.GroundTruthIters, "gt-iters", 0, "power-method iterations for ground truth (default 55)")
	flag.StringVar(&cfg.Fig7Query, "fig7-query", "", "fig7 query type: trend or threshold (default trend)")
	flag.Float64Var(&cfg.ZipfS, "zipf-s", 0, "rank-Zipf exponent for the throughput experiment's source skew (default 1.3)")
	flag.StringVar(&cfg.ServingProfile, "serving-profile", "", "profile for the serving ladder (default web-1m)")
	flag.Float64Var(&cfg.ServingScale, "serving-scale", 0, "serving profile scale (default 1 = the full 10⁶-edge graph)")
	flag.DurationVar(&cfg.ServingDuration, "serving-duration", 0, "measurement window per serving rung (default 5s)")
	flag.IntVar(&cfg.ServingMaxInFlight, "serving-max-inflight", 0, "server admission budget for the ladder (default 8; small values shed sooner, negative disables)")
	flag.Float64Var(&cfg.ServingZipfS, "serving-zipf-s", 0, "rank-Zipf skew of serving source popularity (default 1.1)")
	servingRates := flag.String("serving-rates", "", "comma-separated target-QPS ladder, lowest first (default 50,150,400)")
	servingJSON := flag.String("serving-json", "", "if set, the serving experiment writes its ladder to this file (e.g. BENCH_serving.json)")
	checkBaseline := flag.String("check-baseline", "BENCH_crashsim.json", "committed comparison file the check experiment grades against")
	checkFresh := flag.String("check-fresh", "", "freshly generated comparison file for the check experiment (required by check)")
	checkTolerance := flag.Float64("check-tolerance", 0.15, "check fails a section below 1-tolerance of its baseline geomean ratio")
	seed := flag.Uint64("seed", 0, "experiment seed (default 42)")
	format := flag.String("format", "table", "output format: table or csv")
	kernelJSON := flag.String("kernel-json", "", "if set, the kernel experiment also writes its machine-readable comparison to this file (e.g. BENCH_crashsim.json)")
	flag.Parse()
	cfg.Seed = *seed
	if *servingRates != "" {
		for _, f := range strings.Split(*servingRates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				fmt.Fprintf(os.Stderr, "repro: bad -serving-rates entry %q\n", f)
				os.Exit(1)
			}
			cfg.ServingRates = append(cfg.ServingRates, r)
		}
	}
	print := func(rep *bench.Report) error { return rep.Fprint(os.Stdout) }
	if *format == "csv" {
		print = func(rep *bench.Report) error { return rep.FprintCSV(os.Stdout) }
	} else if *format != "table" {
		fmt.Fprintf(os.Stderr, "repro: unknown format %q\n", *format)
		os.Exit(1)
	}

	opt := options{
		kernelJSON:     *kernelJSON,
		servingJSON:    *servingJSON,
		checkBaseline:  *checkBaseline,
		checkFresh:     *checkFresh,
		checkTolerance: *checkTolerance,
	}
	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	for _, name := range experiments {
		if err := run(name, cfg, print, opt); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}
}

// options carries the file-path and gate flags that are not bench
// config.
type options struct {
	kernelJSON     string
	servingJSON    string
	checkBaseline  string
	checkFresh     string
	checkTolerance float64
}

func run(name string, cfg bench.Config, print func(*bench.Report) error, opt options) error {
	kernelJSON := opt.kernelJSON
	switch name {
	case "all":
		for _, e := range []string{"table2", "table3", "example2", "fig5", "fig6", "fig7", "ablation", "extra", "scaling", "memory", "kernel", "store", "prsim"} {
			// "kernel" covers the throughput section too; no separate
			// entry. serving and check stay explicit: one is a load
			// test, the other needs a fresh file to grade.
			if err := run(e, cfg, print, opt); err != nil {
				return err
			}
		}
		return nil
	case "serving":
		cmp, rep, err := bench.Serving(cfg)
		if cmp != nil && opt.servingJSON != "" {
			// Persist the ladder before reporting the error: a failing
			// run's evidence is exactly what needs uploading.
			f, werr := os.Create(opt.servingJSON)
			if werr == nil {
				werr = cmp.WriteJSON(f)
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
			}
			if werr != nil && err == nil {
				err = werr
			}
		}
		if rep != nil {
			if perr := print(rep); perr != nil && err == nil {
				err = perr
			}
		}
		return err
	case "check":
		if opt.checkFresh == "" {
			return fmt.Errorf("check needs -check-fresh pointing at a freshly generated comparison file")
		}
		baseline, err := mustReadComparison(opt.checkBaseline)
		if err != nil {
			return err
		}
		fresh, err := mustReadComparison(opt.checkFresh)
		if err != nil {
			return err
		}
		_, rep, err := bench.Check(baseline, fresh, opt.checkTolerance)
		if rep != nil {
			if perr := print(rep); perr != nil && err == nil {
				err = perr
			}
		}
		return err
	case "kernel":
		cmp, rep, err := bench.Kernel(cfg)
		if err != nil {
			return err
		}
		tcmp, trep, err := bench.TemporalKernel(cfg)
		if err != nil {
			return err
		}
		cmp.Temporal = tcmp
		bcmp, brep, err := bench.Throughput(cfg)
		if err != nil {
			return err
		}
		cmp.Batch = bcmp
		if kernelJSON != "" {
			old, err := readComparison(kernelJSON)
			if err != nil {
				return err
			}
			// Regenerating the kernel sections keeps previously recorded
			// store and prsim sections; "store" and "prsim" own those.
			cmp.Store = old.Store
			cmp.PRSim = old.PRSim
			if err := writeComparison(kernelJSON, cmp); err != nil {
				return err
			}
		}
		if err := print(rep); err != nil {
			return err
		}
		if err := print(trep); err != nil {
			return err
		}
		return print(brep)
	case "throughput":
		cmp, rep, err := bench.Throughput(cfg)
		if err != nil {
			return err
		}
		if kernelJSON != "" {
			f, err := os.Create(kernelJSON)
			if err != nil {
				return err
			}
			if err := cmp.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return print(rep)
	case "store":
		scmp, rep, err := bench.Store(cfg)
		if err != nil {
			return err
		}
		if kernelJSON != "" {
			// Merge into the existing comparison file so regenerating
			// the store section alone keeps the kernel rows.
			old, err := readComparison(kernelJSON)
			if err != nil {
				return err
			}
			old.Store = scmp
			if err := writeComparison(kernelJSON, old); err != nil {
				return err
			}
		}
		return print(rep)
	case "prsim":
		pcmp, rep, err := bench.PRSim(cfg)
		if err != nil {
			return err
		}
		if kernelJSON != "" {
			// Merge like "store": regenerating the prsim section alone
			// keeps every other committed section.
			old, err := readComparison(kernelJSON)
			if err != nil {
				return err
			}
			old.PRSim = pcmp
			if err := writeComparison(kernelJSON, old); err != nil {
				return err
			}
		}
		return print(rep)
	case "table2":
		_, rep, err := bench.Table2()
		if err != nil {
			return err
		}
		return print(rep)
	case "table3":
		rep, err := bench.Table3(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "example2":
		rep, err := bench.Example2()
		if err != nil {
			return err
		}
		return print(rep)
	case "fig5":
		_, rep, err := bench.Fig5(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "fig6":
		_, rep, err := bench.Fig6(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "fig7":
		_, rep, err := bench.Fig7(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "ablation":
		rep, err := bench.AblationEstimator(cfg)
		if err != nil {
			return err
		}
		if err := print(rep); err != nil {
			return err
		}
		rep, err = bench.AblationPruning(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "extra":
		rep, err := bench.Extra(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "scaling":
		_, rep, err := bench.Scaling(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "memory":
		rep, err := bench.Memory(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	default:
		return fmt.Errorf("unknown experiment %q (want table2, table3, example2, fig5, fig6, fig7, ablation, extra, scaling, memory, kernel, throughput, store, prsim, serving, check, all)", name)
	}
}

// readComparison loads an existing machine-readable comparison file so
// an experiment can merge its section without dropping the others. A
// missing file is an empty comparison; a file that exists but does not
// parse is an error — silently overwriting it would destroy sections
// someone measured.
func readComparison(path string) (*bench.KernelComparison, error) {
	cmp := &bench.KernelComparison{}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cmp, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, cmp); err != nil {
		return nil, fmt.Errorf("existing %s does not parse (%v); move it aside to regenerate", path, err)
	}
	return cmp, nil
}

// mustReadComparison is readComparison for the check gate, where a
// missing file means the gate has nothing to grade and must fail, not
// quietly compare against an empty baseline.
func mustReadComparison(path string) (*bench.KernelComparison, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("check: comparison file %s does not exist", path)
	}
	return readComparison(path)
}

func writeComparison(path string, cmp *bench.KernelComparison) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cmp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
