// Command repro regenerates the paper's tables and figures using the
// synthetic dataset stand-ins.
//
// Usage:
//
//	repro [flags] [experiment ...]
//
// Experiments: table2, table3, example2, fig5, fig6, fig7, ablation,
// extra, scaling, memory, kernel, throughput, store, all (default:
// all). Flags tune scale and budgets; the defaults finish in a few
// minutes. EXPERIMENTS.md records committed results with the exact
// flags used.
//
// -kernel-json names the machine-readable comparison file
// (BENCH_crashsim.json): the kernel experiment writes the static,
// temporal and batch sections, the store experiment merges its
// cold-vs-warm section into the same file, and each writer preserves
// the sections it does not own.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"crashsim/internal/bench"
)

func main() {
	cfg := bench.Config{}
	flag.Float64Var(&cfg.Scale, "scale", 0, "static dataset scale (default 0.05)")
	flag.Float64Var(&cfg.TemporalScale, "temporal-scale", 0, "temporal dataset scale for fig6 (default 0.02)")
	flag.Float64Var(&cfg.Fig7Scale, "fig7-scale", 0, "as-733 scale for fig7 (default 0.03)")
	flag.IntVar(&cfg.Sources, "sources", 0, "random query sources per dataset (default 5; paper uses 100)")
	flag.IntVar(&cfg.Snapshots, "snapshots", 0, "history length for fig6 (default 8)")
	flag.Float64Var(&cfg.Eps, "eps", 0, "error bound for non-swept algorithms (default 0.025)")
	flag.Float64Var(&cfg.C, "c", 0, "SimRank decay factor (default 0.6)")
	flag.Float64Var(&cfg.IterScale, "iter-scale", 0, "multiplier on theory-derived iteration counts (default 0.02)")
	flag.IntVar(&cfg.GroundTruthIters, "gt-iters", 0, "power-method iterations for ground truth (default 55)")
	flag.StringVar(&cfg.Fig7Query, "fig7-query", "", "fig7 query type: trend or threshold (default trend)")
	flag.Float64Var(&cfg.ZipfS, "zipf-s", 0, "rank-Zipf exponent for the throughput experiment's source skew (default 1.3)")
	seed := flag.Uint64("seed", 0, "experiment seed (default 42)")
	format := flag.String("format", "table", "output format: table or csv")
	kernelJSON := flag.String("kernel-json", "", "if set, the kernel experiment also writes its machine-readable comparison to this file (e.g. BENCH_crashsim.json)")
	flag.Parse()
	cfg.Seed = *seed
	print := func(rep *bench.Report) error { return rep.Fprint(os.Stdout) }
	if *format == "csv" {
		print = func(rep *bench.Report) error { return rep.FprintCSV(os.Stdout) }
	} else if *format != "table" {
		fmt.Fprintf(os.Stderr, "repro: unknown format %q\n", *format)
		os.Exit(1)
	}

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	for _, name := range experiments {
		if err := run(name, cfg, print, *kernelJSON); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(name string, cfg bench.Config, print func(*bench.Report) error, kernelJSON string) error {
	switch name {
	case "all":
		for _, e := range []string{"table2", "table3", "example2", "fig5", "fig6", "fig7", "ablation", "extra", "scaling", "memory", "kernel", "store"} {
			// "kernel" covers the throughput section too; no separate entry.
			if err := run(e, cfg, print, kernelJSON); err != nil {
				return err
			}
		}
		return nil
	case "kernel":
		cmp, rep, err := bench.Kernel(cfg)
		if err != nil {
			return err
		}
		tcmp, trep, err := bench.TemporalKernel(cfg)
		if err != nil {
			return err
		}
		cmp.Temporal = tcmp
		bcmp, brep, err := bench.Throughput(cfg)
		if err != nil {
			return err
		}
		cmp.Batch = bcmp
		if kernelJSON != "" {
			old, err := readComparison(kernelJSON)
			if err != nil {
				return err
			}
			// Regenerating the kernel sections keeps a previously
			// recorded store section; "store" owns that one.
			cmp.Store = old.Store
			if err := writeComparison(kernelJSON, cmp); err != nil {
				return err
			}
		}
		if err := print(rep); err != nil {
			return err
		}
		if err := print(trep); err != nil {
			return err
		}
		return print(brep)
	case "throughput":
		cmp, rep, err := bench.Throughput(cfg)
		if err != nil {
			return err
		}
		if kernelJSON != "" {
			f, err := os.Create(kernelJSON)
			if err != nil {
				return err
			}
			if err := cmp.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return print(rep)
	case "store":
		scmp, rep, err := bench.Store(cfg)
		if err != nil {
			return err
		}
		if kernelJSON != "" {
			// Merge into the existing comparison file so regenerating
			// the store section alone keeps the kernel rows.
			old, err := readComparison(kernelJSON)
			if err != nil {
				return err
			}
			old.Store = scmp
			if err := writeComparison(kernelJSON, old); err != nil {
				return err
			}
		}
		return print(rep)
	case "table2":
		_, rep, err := bench.Table2()
		if err != nil {
			return err
		}
		return print(rep)
	case "table3":
		rep, err := bench.Table3(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "example2":
		rep, err := bench.Example2()
		if err != nil {
			return err
		}
		return print(rep)
	case "fig5":
		_, rep, err := bench.Fig5(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "fig6":
		_, rep, err := bench.Fig6(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "fig7":
		_, rep, err := bench.Fig7(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "ablation":
		rep, err := bench.AblationEstimator(cfg)
		if err != nil {
			return err
		}
		if err := print(rep); err != nil {
			return err
		}
		rep, err = bench.AblationPruning(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "extra":
		rep, err := bench.Extra(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "scaling":
		_, rep, err := bench.Scaling(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	case "memory":
		rep, err := bench.Memory(cfg)
		if err != nil {
			return err
		}
		return print(rep)
	default:
		return fmt.Errorf("unknown experiment %q (want table2, table3, example2, fig5, fig6, fig7, ablation, extra, scaling, memory, kernel, throughput, store, all)", name)
	}
}

// readComparison loads an existing machine-readable comparison file so
// an experiment can merge its section without dropping the others. A
// missing file is an empty comparison; a file that exists but does not
// parse is an error — silently overwriting it would destroy sections
// someone measured.
func readComparison(path string) (*bench.KernelComparison, error) {
	cmp := &bench.KernelComparison{}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cmp, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, cmp); err != nil {
		return nil, fmt.Errorf("existing %s does not parse (%v); move it aside to regenerate", path, err)
	}
	return cmp, nil
}

func writeComparison(path string, cmp *bench.KernelComparison) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cmp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
