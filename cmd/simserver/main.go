// Command simserver serves SimRank queries over HTTP.
//
//	simserver -graph wiki.txt -addr :8080
//	simserver -profile hepth -scale 0.05 -algo sling -addr :8080
//
//	curl 'localhost:8080/singlesource?u=3&k=10'
//	curl 'localhost:8080/pair?u=3&v=17'
//	curl 'localhost:8080/topk?u=3&k=10'
//	curl -d '{"sources":[3,17,3],"k":10}' 'localhost:8080/batch/singlesource'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//
// The backend is selected with -algo (crashsim, probesim, sling, reads,
// exact); index-based backends build their index at startup. Each query
// runs under a per-request deadline (-timeout), concurrent estimates
// are bounded by an admission gate (-max-inflight, weighted by batch
// size; excess queries get 429 + Retry-After; -max-batch caps batch
// length), /metrics reports query counts, latency histograms
// and Monte-Carlo work counters, -pprof mounts /debug/pprof/, and the
// process drains in-flight requests and exits cleanly on
// SIGINT/SIGTERM.
//
// Query results are cached in a sharded LRU (-cache-bytes, default
// 64 MiB; 0 disables) with singleflight coalescing, so repeated and
// concurrent identical queries cost one backend computation. Estimates
// are deterministic for a fixed seed, so cached results are exact.
// -cache-ttl adds an optional hard age bound on top of the
// graph-version invalidation. /health reports the live hit ratio,
// /stats and /metrics the full cache counters.
//
// With -index-dir set and an index-based backend (sling, reads,
// prsim), the
// server restarts warm: it looks for a snapshot of the dataset's index
// in that directory (internal/store format) and loads it instead of
// rebuilding, after verifying checksums and that the snapshot's graph
// version matches the dataset actually loaded. On a miss — no file, a
// corrupt file, a version or parameter mismatch — it rebuilds as usual
// and writes the snapshot through for the next restart. A loaded index
// is bit-identical to a rebuilt one (enforced by tests and
// crashsim -verify-index), so warm restarts change startup time only.
//
// -mmap upgrades the warm restart to zero-copy: the snapshot is mapped
// read-only (format v2) and the indexes serve straight out of the
// kernel page cache, so startup touches O(1) pages, N servers on one
// machine share one physical copy of the index, and -mmap-verify picks
// the checksum policy (section: hash each section the first time it is
// imported; eager: hash everything up front; none: trusted restart).
// A v1 or otherwise unmappable snapshot falls back to the copying
// loader, then to a rebuild. The startup line
// "index load: mode=... wall=... mapped_bytes=..." records which path
// ran; /metrics exports the same as store.mmap_opens,
// store.mapped_bytes and store.crc_deferred/crc_verified.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crashsim"
	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/server"
	"crashsim/internal/sling"
	"crashsim/internal/store"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "static edge-list file")
		profile   = flag.String("profile", "", "generate a dataset profile instead of reading a file")
		scale     = flag.Float64("scale", 0.05, "profile scale")
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algo", "crashsim", "backend: "+strings.Join(engine.Names(), "|"))
		eps       = flag.Float64("eps", 0.025, "error bound ε")
		c         = flag.Float64("c", 0.6, "decay factor")
		iters     = flag.Int("iters", 2000, "Monte-Carlo iterations (0 = theory-derived)")
		seed      = flag.Uint64("seed", 42, "random seed")
		timeout   = flag.Duration("timeout", server.DefaultTimeout, "per-query estimation deadline (negative disables)")
		maxInFl   = flag.Int("max-inflight", server.DefaultMaxInFlight(),
			"max concurrent query estimates before 429, counting each batched source (negative disables admission control)")
		maxBatch = flag.Int("max-batch", 0,
			"max sources per /batch/singlesource request (default 128)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20,
			"query-result cache capacity in bytes (0 disables caching)")
		cacheTTL = flag.Duration("cache-ttl", 0,
			"query-result cache entry lifetime (0 = no age bound; graph-version keying already prevents stale results)")
		pprofOn  = flag.Bool("pprof", false, "mount /debug/pprof/ (trusted ports only)")
		indexDir = flag.String("index-dir", "",
			"index snapshot directory: load the dataset's index from a snapshot instead of rebuilding, write one through after a rebuild (sling/reads/prsim backends)")
		useMmap = flag.Bool("mmap", false,
			"with -index-dir: serve the snapshot zero-copy from a read-only file mapping (page-cache backed, shared across processes) instead of decoding a heap copy")
		mmapVerify = flag.String("mmap-verify", "section",
			"mapped snapshot checksum policy: section (hash each section on first import), eager, or none (trusted restart)")
		hubFraction = flag.Float64("hub-fraction", 0,
			"prsim backend: fraction of nodes (by in-degree rank) indexed eagerly as hubs (0 = backend default 0.05)")
	)
	flag.Parse()

	g, err := load(*graphFile, *profile, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	scfg := server.Config{
		Graph:       g,
		Algo:        *algo,
		Params:      core.Params{C: *c, Eps: *eps, Iterations: *iters, Seed: *seed},
		Timeout:     *timeout,
		MaxInFlight: *maxInFl,
		MaxBatch:    *maxBatch,
		CacheBytes:  *cacheBytes,
		CacheTTL:    *cacheTTL,
		EnablePprof: *pprofOn,
		HubFraction: *hubFraction,
	}
	if *indexDir != "" {
		policy, err := parseVerifyPolicy(*mmapVerify)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
			os.Exit(1)
		}
		spec := datasetSpec(*graphFile, *profile, *scale, *seed)
		if err := setupIndex(&scfg, g, *indexDir, spec, *useMmap, policy); err != nil {
			fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
			os.Exit(1)
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	log.Printf("serving SimRank queries on %s (algo: %s, graph: n=%d m=%d, query timeout: %v, max in-flight: %d, pprof: %t)",
		*addr, srv.Algo(), g.NumNodes(), g.NumEdges(), *timeout, *maxInFl, *pprofOn)
	log.Print("result cache: " + cacheDesc(*cacheBytes, *cacheTTL))
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Print("bye")
	}
}

// cacheDesc renders the cache configuration for the startup log, so
// an operator can confirm the serving setup from the first lines of
// output.
func cacheDesc(bytes int64, ttl time.Duration) string {
	if bytes <= 0 {
		return "disabled (every query recomputes)"
	}
	d := fmt.Sprintf("%d MiB sharded LRU with request coalescing", bytes>>20)
	if bytes < 1<<20 {
		d = fmt.Sprintf("%d bytes sharded LRU with request coalescing", bytes)
	}
	if ttl > 0 {
		return fmt.Sprintf("%s, ttl %v", d, ttl)
	}
	return d + ", no ttl (graph-version invalidation only)"
}

// datasetSpec names the dataset for snapshot identity: the edge-list
// path, or the generator coordinates. The spec picks the snapshot
// file; the graph's content version inside it is what actually gets
// verified.
func datasetSpec(graphFile, profile string, scale float64, seed uint64) string {
	if graphFile != "" {
		return graphFile
	}
	return fmt.Sprintf("%s@%g/%d", profile, scale, seed)
}

// parseVerifyPolicy maps the -mmap-verify flag to a store policy.
func parseVerifyPolicy(s string) (store.VerifyPolicy, error) {
	switch s {
	case "section":
		return store.VerifyOnLoadSection, nil
	case "eager":
		return store.VerifyEager, nil
	case "none":
		return store.VerifyNone, nil
	default:
		return 0, fmt.Errorf("unknown -mmap-verify policy %q (want section, eager, or none)", s)
	}
}

// setupIndex implements the warm-restart path for index-based
// backends: map or load the dataset's snapshot from dir if present and
// valid, otherwise build the index now and write the snapshot through
// — in every case handing the prebuilt index to the server via Config,
// so server.New never builds twice. One startup line records which
// path ran: mode=mapped|copy|build, the load wall time, and the mapped
// byte count (0 unless mapped).
func setupIndex(scfg *server.Config, g *crashsim.Graph, dir, spec string, useMmap bool, policy store.VerifyPolicy) error {
	if scfg.Algo != "sling" && scfg.Algo != "reads" && scfg.Algo != "prsim" {
		log.Printf("index-dir: backend %q builds no persistent index; ignoring", scfg.Algo)
		return nil
	}
	ecfg := engine.Config{
		C: scfg.Params.C, Eps: scfg.Params.Eps, Delta: scfg.Params.Delta,
		Iterations: scfg.Params.Iterations, Workers: scfg.Params.Workers,
		Seed: scfg.Params.Seed, HubFraction: scfg.HubFraction,
	}
	path := store.SnapshotPath(dir, spec, scfg.Algo)
	if useMmap && setupMapped(scfg, g, path, policy) {
		return nil
	}
	loadStart := time.Now()
	if snap, err := store.Load(path); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("index snapshot %s unusable (%v); rebuilding", path, err)
		}
	} else if snap.Graph.Version() != g.Version() {
		log.Printf("index snapshot %s was built for graph %#x, dataset is %#x; rebuilding",
			path, snap.Graph.Version(), g.Version())
	} else {
		switch scfg.Algo {
		case "sling":
			scfg.SlingIndex, err = snap.ImportSling(g)
		case "reads":
			scfg.ReadsIndex, err = snap.ImportReads(g)
		case "prsim":
			scfg.PRSimIndex, err = snap.ImportPRSim(g)
		}
		if err != nil {
			log.Printf("index snapshot %s rejected (%v); rebuilding", path, err)
		} else {
			log.Printf("index load: mode=copy algo=%s wall=%v mapped_bytes=0 path=%s",
				scfg.Algo, time.Since(loadStart).Round(time.Millisecond), path)
			return nil
		}
	}
	start := time.Now()
	snap := &store.Snapshot{
		Graph: g,
		Meta:  store.Meta{Dataset: spec, Tool: "simserver", CreatedUnix: time.Now().Unix()},
	}
	var err error
	switch scfg.Algo {
	case "sling":
		var ix *sling.Index
		if ix, err = engine.BuildSlingIndex(context.Background(), g, ecfg); err == nil {
			scfg.SlingIndex = ix
			p := ix.Export()
			snap.Sling = &p
		}
	case "reads":
		var ix *reads.Index
		if ix, err = engine.BuildReadsIndex(context.Background(), g, ecfg); err == nil {
			scfg.ReadsIndex = ix
			p := ix.Export()
			snap.Reads = &p
		}
	case "prsim":
		var ix *prsim.Index
		if ix, err = engine.BuildPRSimIndex(context.Background(), g, ecfg); err == nil {
			scfg.PRSimIndex = ix
			p := ix.Export()
			snap.PRSim = &p
		}
	}
	if err != nil {
		return fmt.Errorf("building %s index: %w", scfg.Algo, err)
	}
	log.Printf("index load: mode=build algo=%s wall=%v mapped_bytes=0 path=%s",
		scfg.Algo, time.Since(start).Round(time.Millisecond), path)
	if err := store.Write(path, snap); err != nil {
		// A failed write-through costs the next restart, not this one.
		log.Printf("index snapshot write-through failed: %v", err)
	} else {
		log.Printf("wrote index snapshot %s for the next restart", path)
	}
	return nil
}

// setupMapped attempts the zero-copy restart: map the snapshot, gate
// it on the dataset's graph version, and import the backend's index
// aliasing the mapping. Returns false on any miss — the caller falls
// back to the copying loader, then to a rebuild. The Mapped handle is
// closed before returning; imported indexes hold their own mapping
// references until server shutdown.
func setupMapped(scfg *server.Config, g *crashsim.Graph, path string, policy store.VerifyPolicy) bool {
	start := time.Now()
	mp, err := store.OpenMapped(path, store.MapOptions{Verify: policy})
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("index snapshot %s not mappable (%v); trying the copying loader", path, err)
		}
		return false
	}
	defer mp.Close()
	if mp.GraphVersion() != g.Version() {
		log.Printf("index snapshot %s was built for graph %#x, dataset is %#x; rebuilding",
			path, mp.GraphVersion(), g.Version())
		return false
	}
	switch scfg.Algo {
	case "sling":
		scfg.SlingIndex, err = mp.ImportSling(g)
	case "reads":
		scfg.ReadsIndex, err = mp.ImportReads(g)
	case "prsim":
		scfg.PRSimIndex, err = mp.ImportPRSim(g)
	}
	if err != nil {
		log.Printf("index snapshot %s rejected (%v); trying the copying loader", path, err)
		return false
	}
	log.Printf("index load: mode=mapped algo=%s wall=%v mapped_bytes=%d crc=%s path=%s",
		scfg.Algo, time.Since(start).Round(time.Millisecond), mp.MappedBytes(), policy, path)
	return true
}

func load(graphFile, profile string, scale float64, seed uint64) (*crashsim.Graph, error) {
	switch {
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return crashsim.LoadGraph(f)
	case profile != "":
		p, err := crashsim.Dataset(profile)
		if err != nil {
			return nil, err
		}
		return crashsim.GenerateStatic(p, scale, seed)
	default:
		return nil, fmt.Errorf("need -graph or -profile")
	}
}
