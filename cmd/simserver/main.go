// Command simserver serves SimRank queries over HTTP.
//
//	simserver -graph wiki.txt -addr :8080
//	simserver -profile hepth -scale 0.05 -algo sling -addr :8080
//
//	curl 'localhost:8080/singlesource?u=3&k=10'
//	curl 'localhost:8080/pair?u=3&v=17'
//	curl 'localhost:8080/topk?u=3&k=10'
//	curl -d '{"sources":[3,17,3],"k":10}' 'localhost:8080/batch/singlesource'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//
// The backend is selected with -algo (crashsim, probesim, sling, reads,
// exact); index-based backends build their index at startup. Each query
// runs under a per-request deadline (-timeout), concurrent estimates
// are bounded by an admission gate (-max-inflight, weighted by batch
// size; excess queries get 429 + Retry-After; -max-batch caps batch
// length), /metrics reports query counts, latency histograms
// and Monte-Carlo work counters, -pprof mounts /debug/pprof/, and the
// process drains in-flight requests and exits cleanly on
// SIGINT/SIGTERM.
//
// Query results are cached in a sharded LRU (-cache-bytes, default
// 64 MiB; 0 disables) with singleflight coalescing, so repeated and
// concurrent identical queries cost one backend computation. Estimates
// are deterministic for a fixed seed, so cached results are exact.
// -cache-ttl adds an optional hard age bound on top of the
// graph-version invalidation. /health reports the live hit ratio,
// /stats and /metrics the full cache counters.
//
// With -index-dir set and an index-based backend (sling, reads,
// prsim), the
// server restarts warm: it looks for a snapshot of the dataset's index
// in that directory (internal/store format) and loads it instead of
// rebuilding, after verifying checksums and that the snapshot's graph
// version matches the dataset actually loaded. On a miss — no file, a
// corrupt file, a version or parameter mismatch — it rebuilds as usual
// and writes the snapshot through for the next restart. A loaded index
// is bit-identical to a rebuilt one (enforced by tests and
// crashsim -verify-index), so warm restarts change startup time only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crashsim"
	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/server"
	"crashsim/internal/sling"
	"crashsim/internal/store"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "static edge-list file")
		profile   = flag.String("profile", "", "generate a dataset profile instead of reading a file")
		scale     = flag.Float64("scale", 0.05, "profile scale")
		addr      = flag.String("addr", ":8080", "listen address")
		algo      = flag.String("algo", "crashsim", "backend: "+strings.Join(engine.Names(), "|"))
		eps       = flag.Float64("eps", 0.025, "error bound ε")
		c         = flag.Float64("c", 0.6, "decay factor")
		iters     = flag.Int("iters", 2000, "Monte-Carlo iterations (0 = theory-derived)")
		seed      = flag.Uint64("seed", 42, "random seed")
		timeout   = flag.Duration("timeout", server.DefaultTimeout, "per-query estimation deadline (negative disables)")
		maxInFl   = flag.Int("max-inflight", server.DefaultMaxInFlight(),
			"max concurrent query estimates before 429, counting each batched source (negative disables admission control)")
		maxBatch = flag.Int("max-batch", 0,
			"max sources per /batch/singlesource request (default 128)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20,
			"query-result cache capacity in bytes (0 disables caching)")
		cacheTTL = flag.Duration("cache-ttl", 0,
			"query-result cache entry lifetime (0 = no age bound; graph-version keying already prevents stale results)")
		pprofOn  = flag.Bool("pprof", false, "mount /debug/pprof/ (trusted ports only)")
		indexDir = flag.String("index-dir", "",
			"index snapshot directory: load the dataset's index from a snapshot instead of rebuilding, write one through after a rebuild (sling/reads/prsim backends)")
		hubFraction = flag.Float64("hub-fraction", 0,
			"prsim backend: fraction of nodes (by in-degree rank) indexed eagerly as hubs (0 = backend default 0.05)")
	)
	flag.Parse()

	g, err := load(*graphFile, *profile, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	scfg := server.Config{
		Graph:       g,
		Algo:        *algo,
		Params:      core.Params{C: *c, Eps: *eps, Iterations: *iters, Seed: *seed},
		Timeout:     *timeout,
		MaxInFlight: *maxInFl,
		MaxBatch:    *maxBatch,
		CacheBytes:  *cacheBytes,
		CacheTTL:    *cacheTTL,
		EnablePprof: *pprofOn,
		HubFraction: *hubFraction,
	}
	if *indexDir != "" {
		spec := datasetSpec(*graphFile, *profile, *scale, *seed)
		if err := setupIndex(&scfg, g, *indexDir, spec); err != nil {
			fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
			os.Exit(1)
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	log.Printf("serving SimRank queries on %s (algo: %s, graph: n=%d m=%d, query timeout: %v, max in-flight: %d, pprof: %t)",
		*addr, srv.Algo(), g.NumNodes(), g.NumEdges(), *timeout, *maxInFl, *pprofOn)
	log.Print("result cache: " + cacheDesc(*cacheBytes, *cacheTTL))
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down, draining in-flight requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Print("bye")
	}
}

// cacheDesc renders the cache configuration for the startup log, so
// an operator can confirm the serving setup from the first lines of
// output.
func cacheDesc(bytes int64, ttl time.Duration) string {
	if bytes <= 0 {
		return "disabled (every query recomputes)"
	}
	d := fmt.Sprintf("%d MiB sharded LRU with request coalescing", bytes>>20)
	if bytes < 1<<20 {
		d = fmt.Sprintf("%d bytes sharded LRU with request coalescing", bytes)
	}
	if ttl > 0 {
		return fmt.Sprintf("%s, ttl %v", d, ttl)
	}
	return d + ", no ttl (graph-version invalidation only)"
}

// datasetSpec names the dataset for snapshot identity: the edge-list
// path, or the generator coordinates. The spec picks the snapshot
// file; the graph's content version inside it is what actually gets
// verified.
func datasetSpec(graphFile, profile string, scale float64, seed uint64) string {
	if graphFile != "" {
		return graphFile
	}
	return fmt.Sprintf("%s@%g/%d", profile, scale, seed)
}

// setupIndex implements the warm-restart path for index-based
// backends: load the dataset's snapshot from dir if present and valid,
// otherwise build the index now and write the snapshot through — in
// both cases handing the prebuilt index to the server via Config, so
// server.New never builds twice.
func setupIndex(scfg *server.Config, g *crashsim.Graph, dir, spec string) error {
	if scfg.Algo != "sling" && scfg.Algo != "reads" && scfg.Algo != "prsim" {
		log.Printf("index-dir: backend %q builds no persistent index; ignoring", scfg.Algo)
		return nil
	}
	ecfg := engine.Config{
		C: scfg.Params.C, Eps: scfg.Params.Eps, Delta: scfg.Params.Delta,
		Iterations: scfg.Params.Iterations, Workers: scfg.Params.Workers,
		Seed: scfg.Params.Seed, HubFraction: scfg.HubFraction,
	}
	path := store.SnapshotPath(dir, spec, scfg.Algo)
	if snap, err := store.Load(path); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("index snapshot %s unusable (%v); rebuilding", path, err)
		}
	} else if snap.Graph.Version() != g.Version() {
		log.Printf("index snapshot %s was built for graph %#x, dataset is %#x; rebuilding",
			path, snap.Graph.Version(), g.Version())
	} else {
		start := time.Now()
		switch scfg.Algo {
		case "sling":
			scfg.SlingIndex, err = snap.ImportSling(g)
		case "reads":
			scfg.ReadsIndex, err = snap.ImportReads(g)
		case "prsim":
			scfg.PRSimIndex, err = snap.ImportPRSim(g)
		}
		if err != nil {
			log.Printf("index snapshot %s rejected (%v); rebuilding", path, err)
		} else {
			log.Printf("warm restart: loaded %s index from %s in %v", scfg.Algo, path, time.Since(start).Round(time.Millisecond))
			return nil
		}
	}
	start := time.Now()
	snap := &store.Snapshot{
		Graph: g,
		Meta:  store.Meta{Dataset: spec, Tool: "simserver", CreatedUnix: time.Now().Unix()},
	}
	var err error
	switch scfg.Algo {
	case "sling":
		var ix *sling.Index
		if ix, err = engine.BuildSlingIndex(context.Background(), g, ecfg); err == nil {
			scfg.SlingIndex = ix
			p := ix.Export()
			snap.Sling = &p
		}
	case "reads":
		var ix *reads.Index
		if ix, err = engine.BuildReadsIndex(context.Background(), g, ecfg); err == nil {
			scfg.ReadsIndex = ix
			p := ix.Export()
			snap.Reads = &p
		}
	case "prsim":
		var ix *prsim.Index
		if ix, err = engine.BuildPRSimIndex(context.Background(), g, ecfg); err == nil {
			scfg.PRSimIndex = ix
			p := ix.Export()
			snap.PRSim = &p
		}
	}
	if err != nil {
		return fmt.Errorf("building %s index: %w", scfg.Algo, err)
	}
	log.Printf("built %s index in %v", scfg.Algo, time.Since(start).Round(time.Millisecond))
	if err := store.Write(path, snap); err != nil {
		// A failed write-through costs the next restart, not this one.
		log.Printf("index snapshot write-through failed: %v", err)
	} else {
		log.Printf("wrote index snapshot %s for the next restart", path)
	}
	return nil
}

func load(graphFile, profile string, scale float64, seed uint64) (*crashsim.Graph, error) {
	switch {
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return crashsim.LoadGraph(f)
	case profile != "":
		p, err := crashsim.Dataset(profile)
		if err != nil {
			return nil, err
		}
		return crashsim.GenerateStatic(p, scale, seed)
	default:
		return nil, fmt.Errorf("need -graph or -profile")
	}
}
