// Command simserver serves SimRank queries over HTTP.
//
//	simserver -graph wiki.txt -addr :8080
//	simserver -profile hepth -scale 0.05 -addr :8080
//
//	curl 'localhost:8080/singlesource?u=3&k=10'
//	curl 'localhost:8080/pair?u=3&v=17'
//	curl 'localhost:8080/topk?u=3&k=10'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"crashsim"
	"crashsim/internal/core"
	"crashsim/internal/server"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "static edge-list file")
		profile   = flag.String("profile", "", "generate a dataset profile instead of reading a file")
		scale     = flag.Float64("scale", 0.05, "profile scale")
		addr      = flag.String("addr", ":8080", "listen address")
		eps       = flag.Float64("eps", 0.025, "error bound ε")
		c         = flag.Float64("c", 0.6, "decay factor")
		iters     = flag.Int("iters", 2000, "Monte-Carlo iterations (0 = theory-derived)")
		seed      = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	g, err := load(*graphFile, *profile, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	srv, err := server.New(server.Config{
		Graph:  g,
		Params: core.Params{C: *c, Eps: *eps, Iterations: *iters, Seed: *seed},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserver: %v\n", err)
		os.Exit(1)
	}
	log.Printf("serving SimRank queries on %s (graph: n=%d m=%d)", *addr, g.NumNodes(), g.NumEdges())
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}

func load(graphFile, profile string, scale float64, seed uint64) (*crashsim.Graph, error) {
	switch {
	case graphFile != "":
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return crashsim.LoadGraph(f)
	case profile != "":
		p, err := crashsim.Dataset(profile)
		if err != nil {
			return nil, err
		}
		return crashsim.GenerateStatic(p, scale, seed)
	default:
		return nil, fmt.Errorf("need -graph or -profile")
	}
}
